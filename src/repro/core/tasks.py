"""The four shades of leader election.

The paper studies four formulations of leader election in anonymous
port-labeled networks, in increasing order of strength (Section 1):

* **Selection (S)** -- one node outputs *leader*, all others output
  *non-leader*.
* **Port Election (PE)** -- one node outputs *leader*, every other node
  outputs the first port number on a simple path from itself to the leader.
* **Port Path Election (PPE)** -- every non-leader outputs the sequence
  ``(p1, ..., pk)`` of outgoing ports of a simple path from itself to the
  leader.
* **Complete Port Path Election (CPPE)** -- every non-leader outputs the
  sequence ``(p1, q1, ..., pk, qk)`` of outgoing and incoming port numbers of
  a simple path from itself to the leader; all such paths must end at a
  common node, the leader.

This module defines the task enumeration, the output conventions used across
the library, and the :class:`ElectionOutcome` container produced by the
distributed algorithms and consumed by the validators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Task",
    "LEADER",
    "NON_LEADER",
    "ElectionOutcome",
    "output_is_leader",
]


class Task(str, Enum):
    """The four leader-election task variants of the paper."""

    SELECTION = "S"
    PORT_ELECTION = "PE"
    PORT_PATH_ELECTION = "PPE"
    COMPLETE_PORT_PATH_ELECTION = "CPPE"

    @property
    def full_name(self) -> str:
        return {
            Task.SELECTION: "Selection",
            Task.PORT_ELECTION: "Port Election",
            Task.PORT_PATH_ELECTION: "Port Path Election",
            Task.COMPLETE_PORT_PATH_ELECTION: "Complete Port Path Election",
        }[self]

    @property
    def strength(self) -> int:
        """Position in the Fact 1.1 hierarchy (larger = stronger)."""
        return {
            Task.SELECTION: 0,
            Task.PORT_ELECTION: 1,
            Task.PORT_PATH_ELECTION: 2,
            Task.COMPLETE_PORT_PATH_ELECTION: 3,
        }[self]

    @classmethod
    def ordered(cls) -> Tuple["Task", ...]:
        """The tasks in increasing order of strength."""
        return (
            cls.SELECTION,
            cls.PORT_ELECTION,
            cls.PORT_PATH_ELECTION,
            cls.COMPLETE_PORT_PATH_ELECTION,
        )


#: Output value of the node that declares itself the leader.
LEADER = "leader"

#: Output value of a non-leader node in the Selection task.
NON_LEADER = "non-leader"


def output_is_leader(value: Any) -> bool:
    """Whether an output value designates its node as the leader.

    The leader outputs the string ``"leader"``; for CPPE the paper's
    formulation also allows the leader to output the empty port sequence
    (its path to itself has length zero), so ``()`` counts as well.
    """
    return value == LEADER or value == ()


@dataclass
class ElectionOutcome:
    """Outputs of all nodes after an election algorithm terminates.

    Attributes
    ----------
    task:
        Which of the four tasks the outputs claim to solve.
    outputs:
        Mapping from node handle to its output value (``LEADER`` /
        ``NON_LEADER`` / port / port sequence depending on the task).
    rounds:
        Number of communication rounds used (if known).
    advice_bits:
        Length in bits of the advice string given to the nodes (if any).
    """

    task: Task
    outputs: Dict[int, Any]
    rounds: Optional[int] = None
    advice_bits: Optional[int] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def leaders(self) -> List[int]:
        """Nodes whose output designates them as leader."""
        return [v for v, value in self.outputs.items() if output_is_leader(value)]

    def leader(self) -> int:
        """The unique leader; raises ``ValueError`` if there is not exactly one."""
        leaders = self.leaders()
        if len(leaders) != 1:
            raise ValueError(f"expected exactly one leader, found {len(leaders)}")
        return leaders[0]

    def output(self, node: int) -> Any:
        return self.outputs[node]

    def non_leader_outputs(self) -> Dict[int, Any]:
        """Outputs of all nodes that did not declare themselves leader."""
        return {v: value for v, value in self.outputs.items() if not output_is_leader(value)}

    @classmethod
    def from_pairs(
        cls, task: Task, pairs: Iterable[Tuple[int, Any]], **kwargs: Any
    ) -> "ElectionOutcome":
        return cls(task, dict(pairs), **kwargs)

    def __len__(self) -> int:
        return len(self.outputs)
