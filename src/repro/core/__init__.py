"""Core leader-election layer: tasks, validators, feasibility, election indices."""

from .election_index import (
    SearchLimitExceeded,
    all_election_indices,
    complete_port_path_election_index,
    election_index,
    path_election_assignment,
    port_election_assignment,
    port_election_index,
    port_path_election_index,
    reset_search_statistics,
    search_statistics,
    selection_assignment,
    selection_index,
)
from .feasibility import infeasibility_witness, is_feasible, symmetry_classes
from .hierarchy import index_gaps, indices_respect_hierarchy, verify_fact_1_1
from .tasks import LEADER, NON_LEADER, ElectionOutcome, Task, output_is_leader
from .validate import (
    ValidationResult,
    validate,
    validate_complete_port_path_election,
    validate_outcome,
    validate_port_election,
    validate_port_path_election,
    validate_selection,
)

__all__ = [
    "Task",
    "LEADER",
    "NON_LEADER",
    "ElectionOutcome",
    "output_is_leader",
    "ValidationResult",
    "validate",
    "validate_outcome",
    "validate_selection",
    "validate_port_election",
    "validate_port_path_election",
    "validate_complete_port_path_election",
    "is_feasible",
    "infeasibility_witness",
    "symmetry_classes",
    "SearchLimitExceeded",
    "selection_index",
    "port_election_index",
    "port_path_election_index",
    "complete_port_path_election_index",
    "election_index",
    "all_election_indices",
    "selection_assignment",
    "port_election_assignment",
    "path_election_assignment",
    "search_statistics",
    "reset_search_statistics",
    "indices_respect_hierarchy",
    "verify_fact_1_1",
    "index_gaps",
]
