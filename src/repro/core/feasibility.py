"""Feasibility of leader election in anonymous networks.

By the characterisation of Yamashita and Kameda (reference [44] of the
paper), leader election -- in any of the four formulations -- is possible in
an anonymous network whose map is known to the nodes if and only if the
(infinite) views of all nodes are pairwise distinct.  The paper calls such
networks *feasible* and restricts attention to them.

Infinite-view equality coincides with the fixpoint of partition refinement,
so feasibility is decided in polynomial time by
:class:`repro.views.refinement.ViewRefinement`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..portgraph.graph import PortLabeledGraph
from ..views.refinement import ViewRefinement

__all__ = [
    "is_feasible",
    "infeasibility_witness",
    "symmetry_classes",
]


def _default_refinement(graph: PortLabeledGraph) -> ViewRefinement:
    """The process-wide memoised refinement of ``graph``.

    Feasibility is decided at the refinement fixpoint; routing the default
    through the runner's shared cache means a feasibility check and a later
    ψ_Z computation on the same graph reuse one refinement.  (Imported
    lazily: ``repro.runner`` imports :mod:`repro.core`.)
    """
    from ..runner.cache import shared_refinement

    return shared_refinement(graph)


def is_feasible(
    graph: PortLabeledGraph, *, refinement: Optional[ViewRefinement] = None
) -> bool:
    """Whether leader election is possible in ``graph`` (given the map).

    True iff all nodes have pairwise distinct infinite views.
    """
    refinement = refinement if refinement is not None else _default_refinement(graph)
    return refinement.is_discrete()


def infeasibility_witness(
    graph: PortLabeledGraph, *, refinement: Optional[ViewRefinement] = None
) -> Optional[List[int]]:
    """A class of two or more nodes sharing the same infinite view, or ``None`` if feasible.

    Any two nodes of the returned class are indistinguishable forever, which
    is the paper's reason why no deterministic algorithm can elect a leader.
    """
    refinement = refinement if refinement is not None else _default_refinement(graph)
    stable = refinement.ensure_stable()
    for members in refinement.classes(stable).values():
        if len(members) > 1:
            return members
    return None


def symmetry_classes(
    graph: PortLabeledGraph, *, refinement: Optional[ViewRefinement] = None
) -> Dict[int, List[int]]:
    """The partition of nodes into classes of equal infinite views."""
    refinement = refinement if refinement is not None else _default_refinement(graph)
    return refinement.classes(refinement.ensure_stable())
