"""Map-based Selection in minimum time (Lemma 2.7 and Theorem 2.2's algorithm).

Two entry points:

* :func:`gdk_selection_outputs` -- the algorithm of Lemma 2.7 specialised to
  the class G_{Δ,k}: every node learns B^k, compares it with the unique view
  singled out by the map (the root of the single copy of T_{i,2}), and
  outputs ``leader`` on a match.  It runs in exactly k rounds, certifying
  ψ_S(G_i) <= k.

* :func:`selection_outputs` -- the same idea for an arbitrary feasible graph
  at an arbitrary depth (used by tests and benches as the map-knowledge
  baseline); at depth ψ_S(G) it is the minimum-time Selection algorithm.

Both return plain output dictionaries ready for
:func:`repro.core.validate.validate_selection`.  The simulator-backed,
advice-string version of the same algorithm lives in
:mod:`repro.advice.selection_advice`.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.tasks import LEADER, NON_LEADER
from ..families.gdk import GdkMember
from ..portgraph.graph import PortLabeledGraph
from ..views.refinement import ViewRefinement

__all__ = ["selection_outputs", "gdk_selection_outputs"]


def selection_outputs(
    graph: PortLabeledGraph,
    depth: Optional[int] = None,
    *,
    refinement: Optional[ViewRefinement] = None,
) -> Dict[int, str]:
    """Outputs of the map-based Selection algorithm run for ``depth`` rounds.

    The elected node is the one whose (unique) depth-``depth`` view is
    lexicographically smallest, exactly as in Theorem 2.2; ``depth`` defaults
    to ψ_S(G).
    """
    from ..core.election_index import selection_assignment, selection_index

    refinement = refinement or ViewRefinement(graph)
    if depth is None:
        depth = selection_index(graph, refinement=refinement)
        if depth is None:
            raise ValueError("graph is infeasible; Selection cannot be solved")
    leader = selection_assignment(graph, depth, refinement=refinement)
    if leader is None:
        raise ValueError(f"no node has a unique view at depth {depth}")
    return {v: LEADER if v == leader else NON_LEADER for v in graph.nodes()}


def gdk_selection_outputs(member: GdkMember) -> Dict[int, str]:
    """Lemma 2.7's k-round Selection algorithm on a member G_i of G_{Δ,k}.

    The map tells every node that the node to elect is the unique node whose
    augmented view at depth k is unique -- which the construction guarantees
    is the root r_{i,2} of the single copy of T_{i,2}.
    """
    refinement = ViewRefinement(member.graph)
    distinguished = member.distinguished_root
    if not refinement.has_unique_view(distinguished, member.k):
        raise AssertionError(
            "construction violated: r_{i,2} does not have a unique view at depth k"
        )
    return {
        v: LEADER if v == distinguished else NON_LEADER for v in member.graph.nodes()
    }
