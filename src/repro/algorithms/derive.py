"""Fact 1.1: deriving weaker-task solutions from stronger ones.

If CPPE is solved, every non-leader can keep only the outgoing ports of its
output to solve PPE; keeping only the first outgoing port solves PE; and
outputting plain ``non-leader`` solves Selection.  These derivations cost no
extra communication, which is exactly why the election indices form the
hierarchy ψ_CPPE >= ψ_PPE >= ψ_PE >= ψ_S.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from ..core.tasks import LEADER, NON_LEADER, ElectionOutcome, Task, output_is_leader

__all__ = [
    "cppe_to_ppe",
    "ppe_to_pe",
    "pe_to_selection",
    "weaken_outputs",
    "weaken_outcome",
]


def cppe_to_ppe(outputs: Mapping[int, Any]) -> Dict[int, Any]:
    """Keep only the outgoing ports (p_1, p_2, ...) of every CPPE output."""
    derived: Dict[int, Any] = {}
    for node, value in outputs.items():
        if output_is_leader(value):
            derived[node] = LEADER
        else:
            derived[node] = tuple(value[::2])
    return derived


def ppe_to_pe(outputs: Mapping[int, Any]) -> Dict[int, Any]:
    """Keep only the first outgoing port of every PPE output."""
    derived: Dict[int, Any] = {}
    for node, value in outputs.items():
        if output_is_leader(value):
            derived[node] = LEADER
        else:
            derived[node] = value[0]
    return derived


def pe_to_selection(outputs: Mapping[int, Any]) -> Dict[int, Any]:
    """Forget the port outputs of non-leaders."""
    return {
        node: LEADER if output_is_leader(value) else NON_LEADER
        for node, value in outputs.items()
    }


_CHAIN = {
    Task.COMPLETE_PORT_PATH_ELECTION: (Task.PORT_PATH_ELECTION, cppe_to_ppe),
    Task.PORT_PATH_ELECTION: (Task.PORT_ELECTION, ppe_to_pe),
    Task.PORT_ELECTION: (Task.SELECTION, pe_to_selection),
}


def weaken_outputs(task: Task, outputs: Mapping[int, Any], target: Task) -> Dict[int, Any]:
    """Derive outputs for the weaker ``target`` task from outputs of ``task``."""
    if target.strength > task.strength:
        raise ValueError(f"cannot strengthen {task.value} outputs into {target.value}")
    current_task, current = task, dict(outputs)
    while current_task is not target:
        current_task, transform = _CHAIN[current_task]
        current = transform(current)
    return current


def weaken_outcome(outcome: ElectionOutcome, target: Task) -> ElectionOutcome:
    """Derive an :class:`ElectionOutcome` for the weaker ``target`` task."""
    outputs = weaken_outputs(outcome.task, outcome.outputs, target)
    return ElectionOutcome(
        task=target,
        outputs=outputs,
        rounds=outcome.rounds,
        advice_bits=outcome.advice_bits,
        metadata=dict(outcome.metadata),
    )
