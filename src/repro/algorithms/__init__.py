"""The paper's algorithms: minimum-time election on the constructed families.

* :mod:`repro.algorithms.selection` -- Lemma 2.7 / Theorem 2.2 Selection.
* :mod:`repro.algorithms.port_election` -- Lemma 3.9 Port Election on U_{Δ,k}.
* :mod:`repro.algorithms.cppe_election` -- Lemma 4.8 CPPE on J_{µ,k}.
* :mod:`repro.algorithms.derive` -- the Fact 1.1 derivations between tasks.

The universal minimum-time algorithm for arbitrary feasible graphs (map
advice) lives in :mod:`repro.advice.map_advice`.
"""

from .cppe_election import JmukCppeAlgorithm, jmuk_cppe_outputs, jmuk_leader
from .derive import (
    cppe_to_ppe,
    pe_to_selection,
    ppe_to_pe,
    weaken_outcome,
    weaken_outputs,
)
from .port_election import udk_leader, udk_port_election_outputs
from .selection import gdk_selection_outputs, selection_outputs

__all__ = [
    "selection_outputs",
    "gdk_selection_outputs",
    "udk_port_election_outputs",
    "udk_leader",
    "JmukCppeAlgorithm",
    "jmuk_cppe_outputs",
    "jmuk_leader",
    "cppe_to_ppe",
    "ppe_to_pe",
    "pe_to_selection",
    "weaken_outputs",
    "weaken_outcome",
]
