"""Lemma 3.9: Port Election in k rounds on the class U_{Δ,k}.

Every node of a member G_σ (or of the template U) behaves according to its
degree after gathering its view for k rounds:

* degree 1 -- output port 0 (its only port, which necessarily heads towards
  the cycle);
* degree Δ+2 -- the node is a cycle root r_{j,b}; it compares its view with
  the views of all cycle roots in the map and outputs ``leader`` if its view
  is the lexicographically smallest one, and the cycle port Δ+1 otherwise;
* degree 2Δ-1 -- the node is a hub root r_{j,1,1} or r_{j,1,2}; the map tells
  it (via its view, which is identical for the two copies but distinct across
  j -- Claim 1 of the paper) which port leads towards the cycle, namely the
  port carrying the connector path, which is the σ-dependent port the lower
  bound of Theorem 3.11 is about;
* any other degree -- the node outputs the first port of a shortest path
  towards the closest cycle root it can see within distance k, or towards the
  closest hub root if no cycle root is visible.

The implementation is the graph-side ("semantic") version of the algorithm:
decisions are computed from the constructed member's handles, but every
quantity used is available within distance k of the deciding node, which is
asserted where it matters (`_require_local`).  The honest simulator-backed
route exists for small graphs through the universal map-advice algorithm.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.tasks import LEADER
from ..families.udk import UdkMember
from ..portgraph.paths import bfs_distances, shortest_path
from ..views.encoding import augmented_view_key
from ..views.refinement import ViewRefinement

__all__ = ["udk_port_election_outputs", "udk_leader"]


def _require_local(distance: int, k: int, what: str) -> None:
    if distance > k:
        raise AssertionError(
            f"algorithm would need non-local information: {what} lies at distance "
            f"{distance} > k = {k}"
        )


def udk_leader(member: UdkMember) -> int:
    """The cycle root with the lexicographically smallest view at depth k (r_min of Lemma 3.9)."""
    graph, k = member.graph, member.k
    cycle_roots = member.cycle_root_nodes()
    return min(cycle_roots, key=lambda v: augmented_view_key(graph, v, k))


def udk_port_election_outputs(member: UdkMember) -> Dict[int, object]:
    """Outputs of the Lemma 3.9 Port Election algorithm after k rounds on ``member``."""
    graph, delta, k = member.graph, member.delta, member.k
    cycle_roots = set(member.cycle_root_nodes())
    hub_roots = set(member.hub_root_nodes())
    leader = udk_leader(member)

    # Sanity check of Lemma 3.8 (each cycle root's view at depth k is unique),
    # which is what makes the leader well defined.
    refinement = ViewRefinement(graph)
    for root in cycle_roots:
        if not refinement.has_unique_view(root, k):
            raise AssertionError("Lemma 3.8 violated: a cycle root's depth-k view is not unique")

    # Distances to the nearest cycle root / hub root, shared across all nodes.
    near_cycle: Dict[int, int] = {}
    near_cycle_dist: Dict[int, int] = {}
    for root in cycle_roots:
        for node, d in enumerate(bfs_distances(graph, root)):
            if d >= 0 and (node not in near_cycle_dist or d < near_cycle_dist[node]):
                near_cycle_dist[node] = d
                near_cycle[node] = root
    near_hub: Dict[int, int] = {}
    near_hub_dist: Dict[int, int] = {}
    for root in hub_roots:
        for node, d in enumerate(bfs_distances(graph, root)):
            if d >= 0 and (node not in near_hub_dist or d < near_hub_dist[node]):
                near_hub_dist[node] = d
                near_hub[node] = root

    outputs: Dict[int, object] = {}
    for v in graph.nodes():
        degree = graph.degree(v)
        if degree == delta + 2:
            # cycle root: leader or the cycle port Δ+1 towards the leader
            outputs[v] = LEADER if v == leader else delta + 1
        elif degree == 2 * delta - 1:
            # hub root: the port carrying the connector path towards the cycle
            connector_port = None
            for port in graph.ports(v):
                neighbour = graph.neighbor(v, port)
                if graph.degree(neighbour) == 2 and near_cycle_dist[neighbour] <= k:
                    # connector interior nodes have degree 2 and reach the cycle in <= k hops
                    connector_port = port
                    break
            if connector_port is None:
                raise AssertionError("hub root has no connector port towards the cycle")
            outputs[v] = connector_port
        elif degree == 1:
            outputs[v] = 0
        else:
            if near_cycle_dist.get(v, k + 1) <= k:
                target = near_cycle[v]
                _require_local(near_cycle_dist[v], k, "the nearest cycle root")
            else:
                target = near_hub[v]
                _require_local(near_hub_dist[v], k, "the nearest hub root")
            path = shortest_path(graph, v, target)
            outputs[v] = graph.port_to(v, path[1])
    return outputs
