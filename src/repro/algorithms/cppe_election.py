"""Lemma 4.8: Complete Port Path Election in k rounds on the class J_{µ,k}.

After k rounds every node v of a member J_Y can:

1. locate the unique centre node ρ_x of its own gadget inside its view (all
   nodes of a gadget are within distance k of its ρ);
2. read off, from the degrees of the layer-k ("border") nodes of its own
   component, the integer W encoded there by the Part 4 chain edges, and
   decode its gadget index x from (W, which ρ-port block its component hangs
   off);
3. output the complete port sequence of a simple path to ρ_0: its local path
   to ρ_x (rerouted onto P_x at the first node the two share), followed by the
   concatenation of shortest paths ρ_x -> ρ_{x-1} -> ... -> ρ_0.

:class:`JmukCppeAlgorithm` implements this graph-side (decisions are computed
from the constructed member's handles), asserting that every quantity used
lies within distance k of the deciding node.  Two deliberate deviations from
the paper's prose -- both recorded in EXPERIMENTS.md -- are:

* a border node of a component may fail to see *one* border node of the
  *other* top-layer copy at distance k (the component's diameter is k+1, not
  k as the proof of Lemma 4.8 assumes); since the chain edges always
  increment the degrees of w_{q,1} and w_{q,2} together, the bit is read from
  whichever copy is visible;
* the decoding of x from (W, port block) is phrased so that it is also
  correct for the boundary gadgets Ĥ_0 and Ĥ_{2^z-1}, whose missing
  neighbour makes two of their W values 0.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..core.tasks import LEADER
from ..families.gadget import COMPONENT_KEYS, build_gadget
from ..families.jmuk import JmukMember
from ..portgraph.graph import PortLabeledGraph
from ..portgraph.paths import complete_ports_of_path

__all__ = ["JmukCppeAlgorithm", "jmuk_cppe_outputs", "jmuk_leader"]


def jmuk_leader(member: JmukMember) -> int:
    """The leader elected by the Lemma 4.8 algorithm: ρ_0."""
    return member.rho(0)


def _restricted_shortest_path(
    graph: PortLabeledGraph, source: int, target: int, allowed: Callable[[int], bool]
) -> Optional[List[int]]:
    """Shortest path from ``source`` to ``target`` visiting only allowed nodes."""
    if source == target:
        return [source]
    parent: Dict[int, int] = {source: -1}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        for u in graph.neighbors(v):
            if u in parent or not allowed(u):
                continue
            parent[u] = v
            if u == target:
                path = [u]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(u)
    return None


class JmukCppeAlgorithm:
    """The Lemma 4.8 CPPE algorithm bound to one member of J_{µ,k}."""

    def __init__(self, member: JmukMember) -> None:
        self.member = member
        self.graph = member.graph
        self._base_degrees = self._pristine_border_degrees(member.mu, member.k, member.z)
        self._membership: Dict[int, Dict[str, set]] = {}
        self._codes: Dict[Tuple[int, str], int] = {}
        self._chain_paths: Dict[int, List[int]] = {}
        self._chain_suffix_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------ #
    # construction-independent reference data
    # ------------------------------------------------------------------ #
    @staticmethod
    def _pristine_border_degrees(mu: int, k: int, z: int) -> Dict[Tuple[str, int, int], int]:
        """deg_H of every border node (all gadgets are copies of the same pristine gadget)."""
        pristine, handles = build_gadget(mu, k)
        return {
            (key, q, copy): pristine.degree(handles.border_node(key, q, copy))
            for key in COMPONENT_KEYS
            for q in range(1, z + 1)
            for copy in (1, 2)
        }

    # ------------------------------------------------------------------ #
    # gadget-index decoding
    # ------------------------------------------------------------------ #
    def component_code(self, gadget: int, component: str) -> int:
        """W_{gadget, component}: the integer encoded in the component's border degrees."""
        key = (gadget, component)
        cached = self._codes.get(key)
        if cached is not None:
            return cached
        bits = 0
        for q in range(1, self.member.z + 1):
            w1 = self.member.border_node(gadget, component, q, 1)
            increment = self.graph.degree(w1) - self._base_degrees[(component, q, 1)]
            if increment not in (0, 1):
                raise AssertionError("border node gained more than one chain edge")
            bits = (bits << 1) | increment
        self._codes[key] = bits
        return bits

    def decode_gadget_index(self, code: int, port_block: int) -> int:
        """Decode the gadget index from (W, the ρ-port block the component hangs off).

        Blocks 0 and 1 always lead into the {H_L, H_T} pair (whose W equals
        the gadget index) and blocks 2 and 3 into the {H_R, H_B} pair (whose W
        equals the index of the next gadget), because the Part 5 swaps only
        exchange ports within a pair.  The R/B pair of the last gadget has no
        next neighbour, so its W is 0.
        """
        if port_block in (0, 1):
            return code
        if code == 0:
            return self.member.num_gadgets - 1
        return code - 1

    # ------------------------------------------------------------------ #
    # bookkeeping helpers
    # ------------------------------------------------------------------ #
    def _components_of(self, gadget: int) -> Dict[str, set]:
        if gadget not in self._membership:
            self._membership[gadget] = {
                key: set(self.member.component_nodes(gadget, key)) for key in COMPONENT_KEYS
            }
        return self._membership[gadget]

    def _component_and_block(self, node: int, gadget: int) -> Tuple[str, int]:
        """The component of ``node`` and the ρ-port block its shortest path to ρ uses."""
        rho = self.member.rho(gadget)
        path = _restricted_shortest_path(
            self.graph, node, rho, lambda v: self.member.gadget_of_node(v) == gadget
        )
        if path is None or len(path) - 1 > self.member.k:
            raise AssertionError("node cannot see its gadget's ρ within k rounds")
        port_at_rho = self.graph.port_to(rho, path[-2])
        block = port_at_rho // self.member.mu
        for key, nodes in self._components_of(gadget).items():
            if node in nodes:
                return key, block
        raise AssertionError("node does not belong to any component of its gadget")

    def _assert_border_visibility(self, node: int, gadget: int, component: str) -> None:
        """Every bit of W must be readable from a border node within distance k of ``node``."""
        # Depth-limited BFS: only the radius-k ball around the node matters.
        dist = {node: 0}
        frontier = [node]
        for step in range(1, self.member.k + 1):
            next_frontier = []
            for v in frontier:
                for u in self.graph.neighbors(v):
                    if u not in dist:
                        dist[u] = step
                        next_frontier.append(u)
            frontier = next_frontier
        for q in range(1, self.member.z + 1):
            visible = any(
                self.member.border_node(gadget, component, q, copy) in dist
                for copy in (1, 2)
            )
            if not visible:
                raise AssertionError(
                    f"node {node} cannot read bit {q} of its component code within k rounds"
                )

    # ------------------------------------------------------------------ #
    # the chain ρ_x -> ρ_{x-1} -> ... -> ρ_0
    # ------------------------------------------------------------------ #
    def _chain_path(self, i: int) -> List[int]:
        """P_i: a shortest path from ρ_i to ρ_{i-1}, restricted to gadgets i and i-1."""
        cached = self._chain_paths.get(i)
        if cached is not None:
            return cached
        member = self.member
        path = _restricted_shortest_path(
            self.graph,
            member.rho(i),
            member.rho(i - 1),
            lambda v: member.gadget_of_node(v) in (i, i - 1),
        )
        if path is None:
            raise AssertionError("gadget chain is disconnected")
        self._chain_paths[i] = path
        return path

    def chain_suffix(self, x: int) -> List[int]:
        """The concatenated node path ρ_x -> ρ_{x-1} -> ... -> ρ_0."""
        cached = self._chain_suffix_cache.get(x)
        if cached is not None:
            return cached
        # Build bottom-up (iteratively, the chain can be thousands of gadgets long).
        start = x
        while start > 0 and (start - 1) not in self._chain_suffix_cache:
            start -= 1
        if start == 0:
            self._chain_suffix_cache.setdefault(0, [self.member.rho(0)])
            start = 1
        for i in range(start, x + 1):
            # P_i ends at ρ_{i-1}, which is where the shorter suffix starts.
            self._chain_suffix_cache[i] = self._chain_path(i) + self._chain_suffix_cache[i - 1][1:]
        return self._chain_suffix_cache[x]

    # ------------------------------------------------------------------ #
    # outputs
    # ------------------------------------------------------------------ #
    def output(self, node: int):
        """The CPPE output of ``node`` (LEADER for ρ_0, a complete port sequence otherwise)."""
        member, graph = self.member, self.graph
        gadget = member.gadget_of_node(node)
        rho = member.rho(gadget)

        # Steps 1-2: decode the gadget index from locally visible information.
        if node == rho:
            code = self.component_code(gadget, "L")
            decoded = self.decode_gadget_index(code, port_block=0)
        else:
            component, block = self._component_and_block(node, gadget)
            self._assert_border_visibility(node, gadget, component)
            code = self.component_code(gadget, component)
            decoded = self.decode_gadget_index(code, block)
        if decoded != gadget:
            raise AssertionError(
                f"gadget-index decoding failed: decoded {decoded}, constructed {gadget}"
            )

        # Step 3: build the output path to ρ_0.
        if node == member.rho(0):
            return LEADER
        chain = self.chain_suffix(gadget)
        if node == rho:
            return complete_ports_of_path(graph, chain)
        local = _restricted_shortest_path(
            graph, node, rho, lambda v: member.gadget_of_node(v) == gadget
        )
        assert local is not None and len(local) - 1 <= member.k
        chain_positions = {v: idx for idx, v in enumerate(chain)}
        for idx, v in enumerate(local):
            if v in chain_positions:
                nodes = local[: idx + 1] + chain[chain_positions[v] + 1 :]
                break
        else:  # pragma: no cover - the chain contains ρ_x, so the loop always breaks
            raise AssertionError("local path to ρ never meets the chain")
        return complete_ports_of_path(graph, nodes)


def jmuk_cppe_outputs(
    member: JmukMember, nodes: Optional[Iterable[int]] = None
) -> Dict[int, object]:
    """CPPE outputs for the given nodes (default: every node -- expensive on full members)."""
    algorithm = JmukCppeAlgorithm(member)
    if nodes is None:
        nodes = member.graph.nodes()
    return {node: algorithm.output(node) for node in nodes}
