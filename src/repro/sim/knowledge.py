"""Distributed view acquisition.

``gather_views`` runs the plain view-gathering algorithm for ``r`` rounds and
returns every node's gathered view.  Its role in the test suite is to certify
the simulator's honesty: the distributed result must coincide, node by node,
with the direct graph-side computation ``B^r(v)`` of
:func:`repro.views.view_tree.augmented_view` -- i.e. the simulator gives the
nodes exactly the information the LOCAL model says they can have, no more and
no less.
"""

from __future__ import annotations

from typing import Dict

from ..portgraph.graph import PortLabeledGraph
from ..views.view_tree import ViewNode
from .algorithm import ViewBasedAlgorithm
from .engine import run_synchronous

__all__ = ["gather_views"]


class _ReturnViewAlgorithm(ViewBasedAlgorithm):
    """A view-gathering node whose output is the gathered view itself."""

    def decide(self, view: ViewNode) -> ViewNode:
        return view


def gather_views(graph: PortLabeledGraph, rounds: int) -> Dict[int, ViewNode]:
    """Run ``rounds`` rounds of the LOCAL model and return each node's gathered view."""
    result = run_synchronous(graph, lambda: _ReturnViewAlgorithm(rounds), rounds=rounds)
    return result.outputs
