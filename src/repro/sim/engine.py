"""Synchronous execution engine for the LOCAL model.

The engine owns the only piece of global knowledge -- the graph -- and uses
it exclusively to route messages between ports.  Routing runs on the graph's
flat CSR view (:meth:`~repro.portgraph.graph.PortLabeledGraph.csr`): one
preallocated inbox slot per directed edge side, stamped per round, instead of
a dict-of-dicts rebuilt every round.  Node algorithms are instantiated per
node and only ever learn their degree, the advice string and the messages
arriving on their ports, which keeps the simulation faithful to the
anonymous model.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..kernel.backend import active_backend, numpy_or_none
from ..kernel.csr import INT_TYPECODE
from ..portgraph.graph import PortLabeledGraph
from .model import Advice, NodeAlgorithm
from .trace import ExecutionTrace

__all__ = ["run_synchronous", "SimulationResult"]

AlgorithmFactory = Callable[[], NodeAlgorithm]


class SimulationResult:
    """Outputs and trace of one synchronous run."""

    def __init__(self, outputs: Dict[int, Any], trace: ExecutionTrace) -> None:
        self.outputs = outputs
        self.trace = trace

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SimulationResult rounds={self.trace.rounds} nodes={len(self.outputs)}>"


def _resolve_rounds(
    rounds: Optional[int], algorithms: Dict[int, NodeAlgorithm]
) -> int:
    if rounds is not None:
        if rounds < 0:
            raise ValueError("rounds must be non-negative")
        return rounds
    requested = {alg.rounds_needed() for alg in algorithms.values()}
    requested.discard(None)
    if not requested:
        raise ValueError(
            "no round budget: pass rounds=... or have the algorithms report rounds_needed()"
        )
    if len(requested) > 1:
        raise ValueError(
            f"nodes disagree on the number of rounds needed: {sorted(requested)}; "
            "a correct anonymous algorithm must derive it from degree/advice alone"
        )
    return requested.pop()


def run_synchronous(
    graph: PortLabeledGraph,
    algorithm_factory: AlgorithmFactory,
    *,
    rounds: Optional[int] = None,
    advice: Advice = None,
) -> SimulationResult:
    """Run one synchronous LOCAL-model execution.

    Parameters
    ----------
    graph:
        The network.  Used by the engine only for message routing.
    algorithm_factory:
        Zero-argument callable producing a fresh :class:`NodeAlgorithm` per
        node (the same factory for every node -- nodes are anonymous).
    rounds:
        Number of communication rounds.  ``None`` lets the algorithms declare
        their budget via ``rounds_needed()`` (they must all agree).
    advice:
        The advice bit string given identically to every node (or ``None``).

    Returns
    -------
    SimulationResult
        Node outputs (keyed by node handle, for the benefit of validators)
        and an execution trace.
    """
    algorithms: Dict[int, NodeAlgorithm] = {}
    for v in graph.nodes():
        algorithm = algorithm_factory()
        algorithm.setup(graph.degree(v), advice)
        algorithms[v] = algorithm

    total_rounds = _resolve_rounds(rounds, algorithms)
    trace = ExecutionTrace(advice_bits=0 if advice is None else len(advice))

    # Message routing runs on the graph's CSR view: one preallocated flat
    # inbox slot per dart (directed edge side) addressed through the
    # precomputed twin-dart involution.  The python path stamps slots with
    # the round number instead of clearing them; the numpy path instead
    # sorts the round's arrival darts and resolves (node, port) for all of
    # them in two array operations, so a round costs O(messages log messages)
    # rather than a scan of every dart.  Both build the identical ascending
    # per-port dicts the algorithms' `receive` contract requires.
    csr = graph.csr()
    offsets = csr.offsets
    twin_darts = csr.twin_darts
    num_darts = offsets[csr.num_nodes]
    inbox_flat: list = [None] * num_darts
    numpy = numpy_or_none() if active_backend() == "numpy" else None
    if numpy is not None:
        offsets_np = numpy.frombuffer(offsets, dtype=numpy.dtype(INT_TYPECODE))
    else:
        inbox_stamp = [0] * num_darts

    for round_number in range(1, total_rounds + 1):
        outboxes: Dict[int, Dict[int, Any]] = {
            v: algorithms[v].messages_to_send(round_number) for v in graph.nodes()
        }
        message_count = 0
        if numpy is not None:
            arrivals: list = []
            for v, outbox in outboxes.items():
                base = offsets[v]
                degree = offsets[v + 1] - base
                for port, payload in outbox.items():
                    if port < 0 or port >= degree:
                        raise RuntimeError(f"node {v} tried to send on missing port {port}")
                    target_dart = twin_darts[base + port]
                    inbox_flat[target_dart] = payload
                    arrivals.append(target_dart)
            message_count = len(arrivals)
            received: Dict[int, Dict[int, Any]] = {}
            if arrivals:
                darts = numpy.asarray(arrivals, dtype=offsets_np.dtype)
                darts.sort()  # ascending darts = ascending ports within a node
                node_of = numpy.searchsorted(offsets_np, darts, side="right") - 1
                port_of = darts - offsets_np[node_of]
                for dart, node, port in zip(
                    darts.tolist(), node_of.tolist(), port_of.tolist()
                ):
                    received.setdefault(node, {})[port] = inbox_flat[dart]
            for v in graph.nodes():
                algorithms[v].receive(round_number, received.get(v) or {})
        else:
            for v, outbox in outboxes.items():
                base = offsets[v]
                degree = offsets[v + 1] - base
                for port, payload in outbox.items():
                    if port < 0 or port >= degree:
                        raise RuntimeError(f"node {v} tried to send on missing port {port}")
                    target_dart = twin_darts[base + port]
                    inbox_flat[target_dart] = payload
                    inbox_stamp[target_dart] = round_number
                    message_count += 1
            for v in graph.nodes():
                base = offsets[v]
                messages = {
                    port: inbox_flat[base + port]
                    for port in range(offsets[v + 1] - base)
                    if inbox_stamp[base + port] == round_number
                }
                algorithms[v].receive(round_number, messages)
        trace.record_round(round_number, message_count)

    outputs = {v: algorithms[v].output() for v in graph.nodes()}
    trace.rounds = total_rounds
    return SimulationResult(outputs, trace)
