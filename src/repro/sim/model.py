"""Node-algorithm interface of the LOCAL-model simulator.

The LOCAL model (Peleg; Section 1 of the paper): computation proceeds in
synchronous rounds, all nodes start simultaneously, and in every round each
node may exchange arbitrary messages with all of its neighbours and perform
arbitrary local computation.  Nodes are anonymous -- the only things a node
algorithm ever receives are

* its own degree,
* the advice string (identical at every node),
* the messages delivered on its ports.

In particular a node algorithm never sees the node handles used by the rest
of the library, which is what makes the simulator an honest implementation of
the anonymous model: any decision it produces is necessarily a function of
``(B^r(v), advice)``.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

__all__ = ["NodeAlgorithm", "Advice"]

#: Advice strings are bit strings; ``None`` means "no advice given".
Advice = Optional[str]


class NodeAlgorithm(abc.ABC):
    """Behaviour of a single anonymous node.

    A fresh instance is created per node by the engine; the constructor of a
    concrete subclass receives ``(degree, advice)`` through :meth:`setup`.
    """

    def __init__(self) -> None:
        self.degree: int = 0
        self.advice: Advice = None

    def setup(self, degree: int, advice: Advice) -> None:
        """Called once by the engine before round 1."""
        self.degree = degree
        self.advice = advice

    def rounds_needed(self) -> Optional[int]:
        """How many rounds this node wants to communicate.

        ``None`` means "engine decides" (the engine then requires an explicit
        round budget).  All nodes of a correct algorithm must agree on this
        number, since it may only depend on the degree and the advice.
        """
        return None

    @abc.abstractmethod
    def messages_to_send(self, round_number: int) -> Dict[int, Any]:
        """Messages to send in this round, keyed by outgoing port."""

    @abc.abstractmethod
    def receive(self, round_number: int, messages: Dict[int, Any]) -> None:
        """Deliver the messages that arrived in this round, keyed by incoming port."""

    @abc.abstractmethod
    def output(self) -> Any:
        """The node's final output once communication has finished."""
