"""Synchronous LOCAL-model simulator for anonymous port-labeled networks."""

from .algorithm import FunctionalViewAlgorithm, ViewBasedAlgorithm, ViewGatheringAlgorithm
from .engine import SimulationResult, run_synchronous
from .knowledge import gather_views
from .model import Advice, NodeAlgorithm
from .trace import ExecutionTrace, RoundStats

__all__ = [
    "NodeAlgorithm",
    "Advice",
    "ViewGatheringAlgorithm",
    "ViewBasedAlgorithm",
    "FunctionalViewAlgorithm",
    "run_synchronous",
    "SimulationResult",
    "gather_views",
    "ExecutionTrace",
    "RoundStats",
]
