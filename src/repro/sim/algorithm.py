"""Standard node algorithms: view gathering and view-based decisions.

The information a node can possibly acquire in ``r`` rounds of the LOCAL
model is its augmented truncated view ``B^r(v)``.  The
:class:`ViewGatheringAlgorithm` realises that bound constructively: in every
round each node sends its current view (together with the outgoing port, so
the receiver learns the incoming port number of the shared edge) to all
neighbours and assembles the received depth-``(r-1)`` views into its own
depth-``r`` view.  Every algorithm of the paper is a view-gathering algorithm
plus a *decision function* from ``(B^r, advice)`` to an output, which is what
:class:`ViewBasedAlgorithm` captures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..views.view_tree import ViewNode
from .model import Advice, NodeAlgorithm

__all__ = ["ViewGatheringAlgorithm", "ViewBasedAlgorithm", "FunctionalViewAlgorithm"]


class ViewGatheringAlgorithm(NodeAlgorithm):
    """Builds ``B^r(v)`` from ``r`` rounds of neighbour exchange.

    Subclasses override :meth:`decide` (and usually :meth:`rounds_needed`).
    """

    def __init__(self) -> None:
        super().__init__()
        self._view: Optional[ViewNode] = None
        self._incoming_ports: Dict[int, int] = {}

    def setup(self, degree: int, advice: Advice) -> None:
        super().setup(degree, advice)
        self._view = ViewNode(degree)

    @property
    def view(self) -> ViewNode:
        """The node's current view ``B^t`` after ``t`` completed rounds."""
        assert self._view is not None, "setup() has not been called"
        return self._view

    # -- communication ---------------------------------------------------- #
    def messages_to_send(self, round_number: int) -> Dict[int, Any]:
        # Send (my port on this edge, my current view) on every port.  The
        # receiver needs the sender's port number to label the view edge.
        return {port: (port, self._view) for port in range(self.degree)}

    def receive(self, round_number: int, messages: Dict[int, Any]) -> None:
        if set(messages) != set(range(self.degree)):
            raise RuntimeError(
                f"expected one message per port, got ports {sorted(messages)}"
            )
        children = []
        for port in range(self.degree):
            sender_port, sender_view = messages[port]
            self._incoming_ports[port] = sender_port
            children.append((port, sender_port, sender_view))
        assert self._view is not None
        self._view = ViewNode(self.degree, tuple(children))

    # -- decision ---------------------------------------------------------- #
    def decide(self, view: ViewNode) -> Any:
        """Map the gathered view (and ``self.advice``) to the node's output."""
        raise NotImplementedError

    def output(self) -> Any:
        return self.decide(self.view)


class ViewBasedAlgorithm(ViewGatheringAlgorithm):
    """A view-gathering algorithm with a fixed round budget known up front."""

    def __init__(self, rounds: int) -> None:
        super().__init__()
        self._rounds = rounds

    def rounds_needed(self) -> Optional[int]:
        return self._rounds


class FunctionalViewAlgorithm(ViewBasedAlgorithm):
    """A view-based algorithm whose decision is an injected function.

    Handy in tests and in the universal map-advice algorithms, where the
    decision table is computed from the decoded map.
    """

    def __init__(self, rounds: int, decide: Callable[[ViewNode, Advice], Any]) -> None:
        super().__init__(rounds)
        self._decide = decide

    def decide(self, view: ViewNode) -> Any:
        return self._decide(view, self.advice)
