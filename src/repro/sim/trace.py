"""Execution traces of LOCAL-model runs.

The paper measures algorithms by two resources: the number of communication
rounds and the size of the advice.  The trace records both (plus message
counts, which are unbounded in the LOCAL model but useful when profiling the
simulator itself, following the "measure before optimising" workflow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["RoundStats", "ExecutionTrace"]


@dataclass
class RoundStats:
    """Per-round message statistics."""

    round_number: int
    messages: int = 0


@dataclass
class ExecutionTrace:
    """Summary of one synchronous execution."""

    rounds: int = 0
    advice_bits: int = 0
    round_stats: List[RoundStats] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(stats.messages for stats in self.round_stats)

    def record_round(self, round_number: int, messages: int) -> None:
        self.round_stats.append(RoundStats(round_number, messages))
        self.rounds = max(self.rounds, round_number)
