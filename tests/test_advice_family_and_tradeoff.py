"""Tests for the extension modules: family-specific sufficient advice and time/advice trade-offs."""

from __future__ import annotations

import pytest

from repro.advice import (
    decode_jmuk_y,
    decode_udk_sigma,
    encode_jmuk_y,
    encode_udk_sigma,
    jmuk_cppe_sufficient_advice_bits,
    min_advice_bits_to_distinguish,
    sufficient_vs_necessary_bits,
    udk_pe_sufficient_advice_bits,
)
from repro.analysis import map_advice_vs_time, selection_advice_vs_time
from repro.families import build_udk_member, build_udk_template, udk_class_size, udk_tree_count
from repro.portgraph import generators


class TestUdkSigmaAdvice:
    def test_roundtrip(self):
        y = udk_tree_count(4, 1)
        sigma = tuple((j % 3) + 1 for j in range(y))
        member = build_udk_member(4, 1, sigma)
        advice = encode_udk_sigma(member)
        assert decode_udk_sigma(advice, 4) == sigma
        assert udk_pe_sufficient_advice_bits(member) == len(advice)

    def test_template_encodes_empty_sigma(self):
        template = build_udk_template(4, 1)
        advice = encode_udk_sigma(template)
        assert decode_udk_sigma(advice, 4) == ()

    def test_sufficient_advice_has_the_right_order_of_magnitude(self):
        y = udk_tree_count(4, 1)
        member = build_udk_member(4, 1, tuple(1 for _ in range(y)))
        entry = sufficient_vs_necessary_bits(member)
        assert entry["task"] == "PE"
        assert entry["necessary_bits"] == min_advice_bits_to_distinguish(udk_class_size(4, 1))
        # y symbols of ceil(log2(Δ-1)) = 2 bits each, plus a small header
        assert y * 2 <= entry["sufficient_bits"] <= y * 2 + 16
        # and within a log factor of the necessary amount
        assert entry["sufficient_bits"] <= 4 * entry["necessary_bits"]


class TestJmukYAdvice:
    def test_roundtrip_without_building_a_member(self):
        # encode/decode is independent of the heavy construction
        class _Stub:
            y = (1, 0, 0, 1, 1)

        assert encode_jmuk_y(_Stub()) == "10011"
        assert decode_jmuk_y("10011") == (1, 0, 0, 1, 1)

    def test_sufficient_bits_equals_sequence_length(self):
        class _Stub:
            y = tuple(i % 2 for i in range(512))

        assert jmuk_cppe_sufficient_advice_bits(_Stub()) == 512

    def test_unsupported_member_type_rejected(self):
        with pytest.raises(TypeError):
            sufficient_vs_necessary_bits(object())


class TestSelectionTimeAdviceTradeoff:
    def test_advice_grows_with_allotted_time_for_the_view_scheme(self):
        graph = generators.asymmetric_cycle(8)
        rows = selection_advice_vs_time(graph, extra_rounds=(0, 1, 2))
        assert [r.allotted_time for r in rows] == [1, 2, 3]
        bits = [r.advice_bits for r in rows]
        assert bits == sorted(bits)
        assert bits[0] < bits[-1]
        assert all(r.minimum_time == 1 for r in rows)

    def test_map_baseline_is_time_independent(self):
        graph = generators.asymmetric_cycle(8)
        row = map_advice_vs_time(graph)
        assert row.scheme == "full-map"
        assert row.advice_bits > 0

    def test_infeasible_graph_rejected(self):
        with pytest.raises(ValueError):
            selection_advice_vs_time(generators.cycle_graph(6))
        with pytest.raises(ValueError):
            map_advice_vs_time(generators.cycle_graph(6))
