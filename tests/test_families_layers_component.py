"""Tests for layer graphs, the component H and the gadget Ĥ (Section 4.1, Parts 1-3)."""

from __future__ import annotations

import itertools

import pytest

from repro.analysis import lemma_4_3_holds
from repro.families import (
    add_layer,
    build_component,
    build_gadget,
    build_layer_graph,
    component_port_block,
    component_size,
    fact_4_1_layer_sizes,
    gadget_size,
    layer_size,
)
from repro.portgraph import GraphBuilder
from repro.portgraph.paths import bfs_distances, eccentricity
from repro.views import views_equal_across_graphs


class TestLayerGraphs:
    @pytest.mark.parametrize("mu", [2, 3, 4])
    @pytest.mark.parametrize("m", list(range(0, 7)))
    def test_fact_4_1_sizes(self, mu, m):
        graph, handles = build_layer_graph(mu, m)
        assert graph.num_nodes == layer_size(mu, m)
        assert len(handles.nodes) == graph.num_nodes

    def test_fact_4_1_closed_forms(self):
        # L_0 has 1 node, L_1 has µ, L_{2j} has (µ^{j+1}+µ^j-2)/(µ-1), L_{2j+1} has (2µ^{j+1}-2)/(µ-1).
        assert fact_4_1_layer_sizes(3, 5) == {0: 1, 1: 3, 2: 5, 3: 8, 4: 17, 5: 26}

    def test_even_layer_structure(self):
        graph, handles = build_layer_graph(3, 4)
        # roots have degree µ, middles degree 2, internal nodes µ+1
        assert graph.degree(handles.root(0)) == 3
        assert graph.degree(handles.root(1)) == 3
        middles = handles.middle_nodes()
        assert len(middles) == 9
        assert all(graph.degree(v) == 2 for v in middles)
        # identified middles: both addresses resolve to the same handle
        assert handles.node(0, (1, 2)) == handles.node(1, (1, 2))

    def test_odd_layer_structure(self):
        graph, handles = build_layer_graph(3, 5)
        middles = handles.middle_nodes()
        assert len(middles) == 18
        assert all(graph.degree(v) == 2 for v in middles)
        # odd layers do not identify the two sides
        assert handles.node(0, (0, 0)) != handles.node(1, (0, 0))
        # corresponding middles are joined by an edge with port 1 on both sides
        a, b = handles.node(0, (0, 0)), handles.node(1, (0, 0))
        assert graph.edge_ports(a, b) == (1, 1)

    def test_layer_one_is_a_clique(self):
        graph, handles = build_layer_graph(4, 1)
        assert graph.num_edges == 6
        assert all(graph.degree(v) == 3 for v in graph.nodes())

    def test_ordered_nodes_are_lexicographic_and_deduplicated(self):
        _graph, handles = build_layer_graph(2, 4)
        ordered = handles.ordered_nodes()
        assert len(ordered) == layer_size(2, 4) == 10
        assert len(set(ordered)) == 10
        # the first node is the b=0 root
        assert ordered[0] == handles.root(0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_layer_graph(1, 2)
        with pytest.raises(ValueError):
            layer_size(2, -1)


class TestComponent:
    @pytest.mark.parametrize("mu,k", [(2, 4), (3, 4), (2, 5), (3, 5)])
    def test_component_size_and_validity(self, mu, k):
        graph, handles = build_component(mu, k)
        assert graph.num_nodes == component_size(mu, k)
        assert handles.z == layer_size(mu, k)
        assert len(handles.border) == handles.z

    @pytest.mark.parametrize("mu,k", [(2, 4), (3, 4), (2, 5)])
    def test_every_node_sees_rho_within_k(self, mu, k):
        # The root's eccentricity is exactly k: this is what lets every node of
        # a gadget locate ρ after k rounds (used by Lemma 4.8).
        graph, handles = build_component(mu, k)
        assert eccentricity(graph, handles.root) == k

    @pytest.mark.parametrize("mu,k", [(2, 4), (3, 4), (2, 5)])
    def test_lemma_4_3(self, mu, k):
        # Every node fails to see some border pair within distance k-1.
        graph, handles = build_component(mu, k)
        assert lemma_4_3_holds(graph, handles)

    def test_border_nodes_are_layer_k_nodes(self):
        graph, handles = build_component(2, 4)
        top1, top2 = handles.top_layers
        assert {w for w, _ in handles.border} == set(top1.nodes)
        assert {w for _, w in handles.border} == set(top2.nodes)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            build_component(2, 3)
        with pytest.raises(ValueError):
            build_component(1, 4)

    def test_root_reuse_with_port_offset(self):
        builder = GraphBuilder()
        shared_root = builder.add_node()
        from repro.families import add_component

        first = add_component(builder, 2, 4, root=shared_root, root_port_offset=0)
        second = add_component(builder, 2, 4, root=shared_root, root_port_offset=2)
        graph = builder.build()
        assert first.root == second.root == shared_root
        assert graph.degree(shared_root) == 4


class TestGadget:
    @pytest.mark.parametrize("mu,k", [(2, 4), (3, 4)])
    def test_gadget_size_and_rho_degree(self, mu, k):
        graph, handles = build_gadget(mu, k)
        assert graph.num_nodes == gadget_size(mu, k)
        assert graph.degree(handles.rho) == 4 * mu

    def test_component_port_blocks(self):
        assert list(component_port_block(3, "L")) == [0, 1, 2]
        assert list(component_port_block(3, "T")) == [3, 4, 5]
        assert list(component_port_block(3, "R")) == [6, 7, 8]
        assert list(component_port_block(3, "B")) == [9, 10, 11]

    def test_rho_port_blocks_lead_into_the_right_components(self):
        graph, handles = build_gadget(2, 4)
        for key in ("L", "T", "R", "B"):
            block = component_port_block(2, key)
            component_nodes = set(handles.component(key).nodes_without_root)
            for port in block:
                assert graph.neighbor(handles.rho, port) in component_nodes

    def test_proposition_4_4_rho_views_match_across_gadget_copies(self):
        # Two independently built gadgets have identical views at ρ up to k-1
        # (and in fact at k, since no chain edges are present yet).
        g1, h1 = build_gadget(2, 4)
        g2, h2 = build_gadget(2, 4)
        assert views_equal_across_graphs(g1, h1.rho, g2, h2.rho, 3)
        assert views_equal_across_graphs(g1, h1.rho, g2, h2.rho, 4)

    def test_four_components_are_disjoint_and_cover_the_gadget(self):
        graph, handles = build_gadget(2, 4)
        seen = {handles.rho}
        for key in ("L", "T", "R", "B"):
            nodes = handles.component(key).nodes_without_root
            assert not (set(nodes) & seen)
            seen.update(nodes)
        assert len(seen) == graph.num_nodes
