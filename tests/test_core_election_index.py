"""Unit and property tests for exact election indices ψ_Z(G)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    Task,
    all_election_indices,
    complete_port_path_election_index,
    election_index,
    indices_respect_hierarchy,
    is_feasible,
    path_election_assignment,
    port_election_assignment,
    port_election_index,
    port_path_election_index,
    selection_assignment,
    selection_index,
    validate,
    verify_fact_1_1,
)
from repro.core.tasks import LEADER
from repro.portgraph import generators
from repro.views import ViewRefinement


class TestSelectionIndex:
    def test_paper_example_three_node_line(self, three_line):
        # ψ_S = 0: the middle node has unique degree.
        assert selection_index(three_line) == 0

    def test_star_is_zero(self):
        assert selection_index(generators.star_graph(4)) == 0

    def test_infeasible_graph_has_no_index(self, infeasible_graphs):
        for graph in infeasible_graphs:
            assert selection_index(graph) is None

    def test_asymmetric_cycle_needs_one_round(self):
        assert selection_index(generators.asymmetric_cycle(6)) == 1

    def test_selection_assignment_returns_unique_view_node(self):
        graph = generators.star_graph(3)
        assert selection_assignment(graph, 0) == 0
        cycle = generators.asymmetric_cycle(6)
        assert selection_assignment(cycle, 0) is None
        leader = selection_assignment(cycle, 1)
        assert leader is not None
        assert ViewRefinement(cycle).has_unique_view(leader, 1)


class TestPortElectionIndex:
    def test_paper_example_three_node_line(self, three_line):
        assert port_election_index(three_line) == 0

    def test_star_is_zero(self):
        assert port_election_index(generators.star_graph(5)) == 0

    def test_infeasible_graph_has_no_index(self, infeasible_graphs):
        for graph in infeasible_graphs:
            assert port_election_index(graph) is None

    def test_assignment_is_a_valid_pe_solution(self, small_feasible_graphs):
        for graph in small_feasible_graphs:
            index = port_election_index(graph)
            assert index is not None
            leader, ports = port_election_assignment(graph, index)
            outputs = dict(ports)
            outputs[leader] = LEADER
            assert validate(Task.PORT_ELECTION, graph, outputs).ok, graph.name

    def test_assignment_constant_on_view_classes(self):
        graph = generators.asymmetric_cycle(7)
        index = port_election_index(graph)
        leader, ports = port_election_assignment(graph, index)
        refinement = ViewRefinement(graph)
        for u in graph.nodes():
            for v in graph.nodes():
                if u == leader or v == leader:
                    continue
                if refinement.views_equal(u, v, index):
                    assert ports[u] == ports[v]


class TestPathElectionIndices:
    def test_paper_example_three_node_line(self, three_line):
        # The paper's Section 1 example: ψ_CPPE = 1 for the line 0,0,1,0.
        assert port_path_election_index(three_line) == 0
        assert complete_port_path_election_index(three_line) == 1

    def test_star_needs_one_round_for_cppe(self):
        # Leaves of a star reach the centre on distinct incoming ports, so a
        # common CPPE output only exists once the leaves can tell each other apart.
        graph = generators.star_graph(3)
        assert port_path_election_index(graph) == 0
        assert complete_port_path_election_index(graph) == 1

    def test_infeasible_graph_has_no_index(self, infeasible_graphs):
        for graph in infeasible_graphs:
            assert port_path_election_index(graph) is None
            assert complete_port_path_election_index(graph) is None

    def test_assignments_validate(self, small_feasible_graphs):
        for graph in small_feasible_graphs:
            for complete, task in ((False, Task.PORT_PATH_ELECTION), (True, Task.COMPLETE_PORT_PATH_ELECTION)):
                index = election_index(task, graph)
                assert index is not None, graph.name
                leader, sequences = path_election_assignment(graph, index, complete=complete)
                outputs = dict(sequences)
                outputs[leader] = LEADER
                assert validate(task, graph, outputs).ok, (graph.name, task)


class TestHierarchyAndDispatch:
    def test_all_indices_three_node_line(self, three_line):
        indices = all_election_indices(three_line)
        assert indices == {
            Task.SELECTION: 0,
            Task.PORT_ELECTION: 0,
            Task.PORT_PATH_ELECTION: 0,
            Task.COMPLETE_PORT_PATH_ELECTION: 1,
        }

    def test_fact_1_1_on_small_graphs(self, small_feasible_graphs):
        for graph in small_feasible_graphs:
            indices = verify_fact_1_1(graph)
            assert indices_respect_hierarchy(indices)

    def test_election_index_dispatch_matches_specific_functions(self, three_line):
        assert election_index(Task.SELECTION, three_line) == selection_index(three_line)
        assert election_index(Task.PORT_ELECTION, three_line) == port_election_index(three_line)
        assert election_index(Task.PORT_PATH_ELECTION, three_line) == port_path_election_index(three_line)
        assert election_index(Task.COMPLETE_PORT_PATH_ELECTION, three_line) == (
            complete_port_path_election_index(three_line)
        )

    def test_unknown_task_rejected(self, three_line):
        with pytest.raises(ValueError):
            election_index("bogus", three_line)  # type: ignore[arg-type]

    @given(
        n=st.integers(min_value=4, max_value=10),
        extra=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_hierarchy_and_validity(self, n, extra, seed):
        graph = generators.random_connected_graph(n, extra_edges=extra, seed=seed)
        indices = all_election_indices(graph)
        assert indices_respect_hierarchy(indices)
        if not is_feasible(graph):
            assert all(value is None for value in indices.values())
            return
        assert all(value is not None for value in indices.values())
        # the S assignment at ψ_S and the PE assignment at ψ_PE must validate
        index_pe = indices[Task.PORT_ELECTION]
        leader, ports = port_election_assignment(graph, index_pe)
        outputs = dict(ports)
        outputs[leader] = LEADER
        assert validate(Task.PORT_ELECTION, graph, outputs).ok
