"""Unit tests for the flat-array kernel: CSR views and block-cut-tree queries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.kernel import BlockCutTree, GraphKernel, bfs_distances_csr, build_csr
from repro.portgraph import generators
from repro.portgraph.paths import bfs_distances, reachable_without

graph_strategy = st.builds(
    generators.random_connected_graph,
    st.integers(min_value=2, max_value=14),
    st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestCSRGraph:
    def test_csr_is_memoised_on_the_graph(self):
        graph = generators.path_graph(5)
        assert graph.csr() is graph.csr()

    @given(graph=graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_csr_matches_the_port_table(self, graph):
        csr = graph.csr()
        assert csr.num_nodes == graph.num_nodes
        assert csr.num_edges == graph.num_edges
        assert len(csr.neighbors) == len(csr.ports) == len(csr.reverse_ports)
        assert csr.offsets[csr.num_nodes] == 2 * csr.num_edges
        for v in graph.nodes():
            assert csr.degree(v) == graph.degree(v)
            assert list(csr.neighbor_slice(v)) == list(graph.neighbors(v))
            for p in graph.ports(v):
                assert csr.endpoint(v, p) == graph.endpoint(v, p)
                assert csr.neighbor(v, p) == graph.neighbor(v, p)
                assert csr.ports[csr.offsets[v] + p] == p

    @given(graph=graph_strategy, source=st.integers(min_value=0, max_value=13))
    @settings(max_examples=30, deadline=None)
    def test_bfs_distances_match_the_reference(self, graph, source):
        source %= graph.num_nodes
        assert list(bfs_distances_csr(graph.csr(), source)) == bfs_distances(graph, source)

    def test_build_csr_standalone(self):
        graph = generators.star_graph(3)
        csr = build_csr(graph)
        assert csr.endpoint(0, 1) == (2, 0)


class TestBlockCutTree:
    @staticmethod
    def _brute_articulation_points(graph):
        points = set()
        for v in graph.nodes():
            others = [w for w in graph.nodes() if w != v]
            if not others:
                continue
            reach = reachable_without(graph, others[0], v)
            if not all(reach[w] for w in others):
                points.add(v)
        return points

    @given(graph=graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_articulation_points_match_brute_force(self, graph):
        tree = BlockCutTree(graph.csr())
        assert tree.articulation_points() == self._brute_articulation_points(graph)

    @given(graph=graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_removed_node_connectivity_matches_brute_force(self, graph):
        tree = BlockCutTree(graph.csr())
        for removed in graph.nodes():
            for a in graph.nodes():
                if a == removed:
                    continue
                reach = reachable_without(graph, a, removed)
                for b in graph.nodes():
                    if b in (removed, a):
                        continue
                    assert tree.same_component_without(a, b, removed) == reach[b]

    @given(graph=graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_starts_simple_path_matches_the_paths_module(self, graph):
        from repro.portgraph.paths import is_first_port_of_simple_path

        tree = BlockCutTree(graph.csr())
        nodes = list(graph.nodes())
        for v in nodes[:6]:
            for target in nodes[:6]:
                for port in graph.ports(v):
                    assert tree.starts_simple_path(v, port, target) == (
                        is_first_port_of_simple_path(graph, v, port, target)
                    )

    def test_blocks_of_a_tree_are_its_edges(self):
        graph = generators.path_graph(5)
        tree = BlockCutTree(graph.csr())
        blocks = sorted(tree.biconnected_components())
        assert blocks == [(0, 1), (1, 2), (2, 3), (3, 4)]
        assert tree.articulation_points() == {1, 2, 3}

    def test_cycle_is_one_block(self):
        graph = generators.cycle_graph(6)
        tree = BlockCutTree(graph.csr())
        assert tree.biconnected_components() == [tuple(range(6))]
        assert tree.articulation_points() == set()

    def test_component_key_rejects_the_removed_node(self):
        graph = generators.path_graph(3)
        tree = BlockCutTree(graph.csr())
        with pytest.raises(ValueError):
            tree.component_key(1, 1)


class TestGraphKernel:
    def test_kernel_memoises_blockcut_and_distances(self):
        graph = generators.random_connected_graph(9, extra_edges=3, seed=1)
        kernel = GraphKernel(graph)
        assert kernel.csr is graph.csr()
        assert kernel.block_cut_tree() is kernel.block_cut_tree()
        assert kernel.distances_from(2) is kernel.distances_from(2)
        assert list(kernel.distances_from(2)) == bfs_distances(graph, 2)

    def test_shared_kernel_lives_on_the_cache_entry(self):
        from repro.runner import refinement_cache, shared_kernel

        graph = generators.asymmetric_cycle(7)
        kernel = shared_kernel(graph)
        assert shared_kernel(graph) is kernel
        assert refinement_cache.entry(graph).kernel is kernel
