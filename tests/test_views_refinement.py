"""Unit and property tests for partition refinement of views."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.portgraph import generators
from repro.views import (
    ViewRefinement,
    all_nodes_have_twins,
    augmented_view,
    distinguishing_depth,
    find_twin,
    refine_views,
    unique_view_nodes,
    view_key,
    views_equal,
    views_equal_across_graphs,
)


class TestRefinementBasics:
    def test_depth_zero_classes_are_degrees(self):
        graph = generators.star_graph(4)
        refinement = refine_views(graph)
        assert refinement.num_classes(0) == 2
        assert sorted(len(m) for m in refinement.classes(0).values()) == [1, 4]

    def test_symmetric_cycle_never_splits(self):
        graph = generators.cycle_graph(6)
        refinement = ViewRefinement(graph)
        assert refinement.ensure_stable() == 0
        assert refinement.num_classes(10) == 1
        assert not refinement.is_discrete()

    def test_path_graph_becomes_discrete(self):
        graph = generators.path_graph(5)
        refinement = ViewRefinement(graph)
        assert refinement.is_discrete()
        assert refinement.num_classes(refinement.ensure_stable()) == 5

    def test_unique_nodes_and_twins(self):
        graph = generators.asymmetric_cycle(6)
        refinement = ViewRefinement(graph)
        # at depth 1, nodes 2, 3, 4 are too far from the irregular node 0 to differ
        assert set(refinement.unique_nodes(1)) == {0, 1, 5}
        assert refinement.twin_of(2, 1) in {3, 4}
        # at depth 2 everything is distinct
        assert len(refinement.unique_nodes(2)) == 6
        assert refinement.twin_of(2, 2) is None

    def test_first_depth_with_unique_node(self):
        graph = generators.path_graph(4)
        assert ViewRefinement(graph).first_depth_with_unique_node() == 1
        graph2 = generators.star_graph(3)
        assert ViewRefinement(graph2).first_depth_with_unique_node() == 0
        symmetric = generators.cycle_graph(5)
        assert ViewRefinement(symmetric).first_depth_with_unique_node() is None

    def test_max_depth_limits_search(self):
        graph = generators.asymmetric_cycle(6)
        refinement = ViewRefinement(graph)
        assert refinement.first_depth_with_unique_node(max_depth=0) is None
        assert refinement.first_depth_with_unique_node() == 1

    def test_distinguishing_depth(self):
        graph = generators.asymmetric_cycle(6)
        refinement = ViewRefinement(graph)
        assert refinement.distinguishing_depth(0, 2) == 1
        assert refinement.distinguishing_depth(2, 3) == 2
        symmetric = generators.cycle_graph(4)
        assert ViewRefinement(symmetric).distinguishing_depth(0, 2) is None

    def test_negative_depth_rejected(self):
        graph = generators.path_graph(3)
        with pytest.raises(ValueError):
            ViewRefinement(graph).colors(-1)


class TestRefinementMatchesExplicitViews:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_same_equivalence_as_view_trees(self, seed, depth):
        graph = generators.random_connected_graph(9, extra_edges=4, seed=seed)
        refinement = ViewRefinement(graph)
        keys = [view_key(augmented_view(graph, v, depth)) for v in graph.nodes()]
        for u in graph.nodes():
            for v in graph.nodes():
                assert (keys[u] == keys[v]) == refinement.views_equal(u, v, depth), (
                    f"mismatch at depth {depth} for nodes {u},{v} (seed {seed})"
                )

    @given(
        n=st.integers(min_value=3, max_value=12),
        extra=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
        depth=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_refinement_equals_view_equality(self, n, extra, seed, depth):
        graph = generators.random_connected_graph(n, extra_edges=extra, seed=seed)
        refinement = ViewRefinement(graph)
        keys = [view_key(augmented_view(graph, v, depth)) for v in graph.nodes()]
        classes_by_key = len(set(keys))
        assert classes_by_key == refinement.num_classes(depth)
        sample = list(graph.nodes())[: min(6, n)]
        for u in sample:
            for v in sample:
                assert (keys[u] == keys[v]) == refinement.views_equal(u, v, depth)


class TestComparisonHelpers:
    def test_views_equal_wrapper(self):
        graph = generators.path_graph(4)
        assert views_equal(graph, 1, 2, 0)
        assert not views_equal(graph, 1, 2, 1)

    def test_cross_graph_equality(self):
        first = generators.path_graph(5)
        second = generators.path_graph(7)
        # the low-numbered end of every path graph looks identical at small depth
        assert views_equal_across_graphs(first, 0, second, 0, 2)
        assert views_equal_across_graphs(first, 1, second, 1, 2)
        assert not views_equal_across_graphs(first, 0, second, 3, 2)

    def test_find_twin_and_unique_nodes(self):
        graph = generators.path_graph(4)
        assert find_twin(graph, 0, 0) == 3
        assert find_twin(graph, 0, 1) is None
        assert unique_view_nodes(graph, 0) == []
        assert set(unique_view_nodes(graph, 1)) == {0, 1, 2, 3}

    def test_all_nodes_have_twins(self):
        assert all_nodes_have_twins(generators.cycle_graph(6), 5)
        assert not all_nodes_have_twins(generators.star_graph(3), 0)

    def test_distinguishing_depth_wrapper(self):
        graph = generators.asymmetric_cycle(6)
        assert distinguishing_depth(graph, 2, 3) == 2
