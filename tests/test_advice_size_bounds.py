"""Tests for the closed-form advice bounds of the theorems."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.advice import (
    augmented_tree_family_size,
    pe_advice_lower_bound_bits,
    ppe_cppe_advice_lower_bound_bits,
    selection_advice_lower_bound_bits,
    selection_advice_upper_bound_bits,
    tree_leaf_count,
)


class TestTreeCounts:
    def test_leaf_count_matches_families_module(self):
        from repro.families import leaf_count

        for delta in (3, 4, 5, 6):
            for k in (1, 2, 3):
                assert tree_leaf_count(delta, k) == leaf_count(delta, k)

    def test_family_size(self):
        assert augmented_tree_family_size(4, 1) == 9
        assert augmented_tree_family_size(5, 1) == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            tree_leaf_count(2, 1)


class TestSelectionUpperBound:
    def test_monotone_in_delta_and_k(self):
        values_delta = [selection_advice_upper_bound_bits(delta, 2) for delta in range(2, 10)]
        assert values_delta == sorted(values_delta)
        values_k = [selection_advice_upper_bound_bits(5, k) for k in range(0, 5)]
        assert values_k == sorted(values_k)

    def test_polynomial_in_delta_for_fixed_k(self):
        k = 2
        small = selection_advice_upper_bound_bits(4, k)
        large = selection_advice_upper_bound_bits(8, k)
        # doubling Δ at k=2 grows the bound by roughly 2^k = 4 modulo the log factor
        assert large < 16 * small

    def test_validation(self):
        with pytest.raises(ValueError):
            selection_advice_upper_bound_bits(0, 1)
        with pytest.raises(ValueError):
            selection_advice_upper_bound_bits(4, -1)


class TestLowerBoundFormulas:
    def test_theorem_2_9_formula(self):
        value = selection_advice_lower_bound_bits(5, 2)
        assert isinstance(value, Fraction)
        assert math.isclose(float(value), (4**2) / 8 * math.log2(5), rel_tol=1e-6)
        with pytest.raises(ValueError):
            selection_advice_lower_bound_bits(4, 1)

    def test_theorem_3_11_formula(self):
        value = pe_advice_lower_bound_bits(4, 1)
        assert math.isclose(float(value), 9 / 4 * math.log2(4), rel_tol=1e-6)
        with pytest.raises(ValueError):
            pe_advice_lower_bound_bits(3, 1)

    def test_theorem_4_11_formula(self):
        assert ppe_cppe_advice_lower_bound_bits(16, 6) == 2**16
        assert ppe_cppe_advice_lower_bound_bits(16, 12) == 2**256
        approx = ppe_cppe_advice_lower_bound_bits(16, 7)
        assert isinstance(approx, float) and approx > 2**16
        with pytest.raises(ValueError):
            ppe_cppe_advice_lower_bound_bits(8, 6)
        with pytest.raises(ValueError):
            ppe_cppe_advice_lower_bound_bits(16, 5)

    def test_lower_bounds_grow_much_faster_than_upper_bound(self):
        # the separation in its crudest quantitative form
        for delta in (6, 8, 10):
            selection = selection_advice_upper_bound_bits(delta, 1)
            pe = float(pe_advice_lower_bound_bits(delta, 1))
            assert pe / selection > (delta - 1) ** (delta - 3) / (20 * delta)
