"""Unit tests for graph generators, serialization and isomorphism."""

from __future__ import annotations

import pytest

from repro.portgraph import are_isomorphic, find_isomorphism, generators
from repro.portgraph.io import (
    graph_from_dict,
    graph_from_json,
    graph_from_networkx,
    graph_to_dict,
    graph_to_dot,
    graph_to_json,
    graph_to_networkx,
)


class TestGenerators:
    def test_path_graph_shape(self):
        graph = generators.path_graph(5)
        assert graph.num_nodes == 5
        assert graph.num_edges == 4
        assert graph.degree_histogram() == {1: 2, 2: 3}

    def test_cycle_graph_shape(self):
        graph = generators.cycle_graph(7)
        assert graph.num_nodes == 7
        assert graph.num_edges == 7
        assert set(graph.degree_sequence()) == {2}

    def test_complete_graph_ports(self):
        graph = generators.complete_graph(4)
        assert graph.num_edges == 6
        for v in graph.nodes():
            assert sorted(graph.ports(v)) == [0, 1, 2]

    def test_star_graph(self):
        graph = generators.star_graph(5)
        assert graph.degree(0) == 5
        assert all(graph.degree(v) == 1 for v in range(1, 6))

    def test_full_ary_tree_counts(self):
        graph = generators.full_ary_tree(3, 2)
        assert graph.num_nodes == 1 + 3 + 9
        assert graph.degree(0) == 3
        # internal nodes have degree arity+1, leaves degree 1
        assert graph.degree_histogram() == {3: 1, 4: 3, 1: 9}

    def test_full_ary_tree_port_convention(self):
        graph = generators.full_ary_tree(2, 3)
        # every internal non-root node's parent port is `arity`
        for v in graph.nodes():
            if v == 0 or graph.degree(v) == 1:
                continue
            assert graph.degree(v) == 3
            assert 2 in graph.ports(v)

    def test_random_connected_graph_is_connected_and_valid(self):
        for seed in range(5):
            graph = generators.random_connected_graph(12, extra_edges=6, seed=seed)
            assert graph.num_nodes == 12
            assert graph.num_edges >= 11

    def test_random_tree(self):
        graph = generators.random_tree(10, seed=3)
        assert graph.num_edges == 9

    def test_generator_argument_validation(self):
        with pytest.raises(ValueError):
            generators.path_graph(1)
        with pytest.raises(ValueError):
            generators.cycle_graph(2)
        with pytest.raises(ValueError):
            generators.full_ary_tree(0, 2)
        with pytest.raises(ValueError):
            generators.star_graph(0)


class TestIO:
    def test_dict_roundtrip(self):
        graph = generators.random_connected_graph(9, extra_edges=4, seed=7)
        data = graph_to_dict(graph)
        again = graph_from_dict(data)
        assert again == graph

    def test_json_roundtrip(self):
        graph = generators.asymmetric_cycle(6)
        payload = graph_to_json(graph, indent=2)
        again = graph_from_json(payload)
        assert again == graph

    def test_networkx_roundtrip(self):
        graph = generators.random_connected_graph(8, extra_edges=3, seed=11)
        nx_graph = graph_to_networkx(graph)
        assert nx_graph.number_of_edges() == graph.num_edges
        again = graph_from_networkx(nx_graph)
        assert again == graph

    def test_dot_output_mentions_all_edges(self):
        graph = generators.path_graph(4)
        dot = graph_to_dot(graph, highlight={0: "red"})
        assert dot.count("--") == graph.num_edges
        assert "fillcolor" in dot


class TestIsomorphism:
    def test_relabeled_graph_is_isomorphic(self):
        graph = generators.random_connected_graph(10, extra_edges=4, seed=5)
        shuffled = graph.relabeled(list(reversed(range(10))))
        mapping = find_isomorphism(graph, shuffled)
        assert mapping is not None
        assert are_isomorphic(graph, shuffled)

    def test_mirror_relabeling_of_line_is_isomorphic(self):
        # The only two valid port labelings of the 3-node line are mirror
        # images of each other, hence isomorphic as port-labeled maps.
        first = generators.three_node_line((0, 0, 1, 0))
        second = generators.three_node_line((0, 1, 0, 0))
        assert are_isomorphic(first, second)

    def test_different_port_labelings_not_isomorphic(self):
        # Same topology (a 5-cycle), different port labelings: the symmetric
        # labeling is vertex-transitive, the asymmetric one is not.
        assert not are_isomorphic(
            generators.cycle_graph(5), generators.asymmetric_cycle(5)
        )

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(generators.path_graph(4), generators.path_graph(5))

    def test_symmetric_cycle_isomorphic_to_rotation(self):
        graph = generators.cycle_graph(6)
        rotated = graph.relabeled([(v + 2) % 6 for v in range(6)])
        assert are_isomorphic(graph, rotated)
