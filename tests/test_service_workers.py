"""Tests for the sharded process backend and the service lifecycle fixes.

Tentpole coverage: deterministic shard routing, byte-identity of process-
vs thread-backend responses over the 200-graph mixed corpus, worker
recycling, crash detection with a single resubmit, and the graceful
thread-backend fallback.  Plus regression tests for the three lifecycle
bugs fixed in the same PR: malformed ``Content-Length``/header lines are
400s (not 500s or silent acceptance), a sweep whose client vanishes
between compute and emit is marked ``cancelled``, and
``ElectionService.close`` is idempotent and leak-free.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import threading
import time

import pytest
from test_service import _RunningServer, make_service
from test_service_batch import _post_stream

from repro.runner import refinement_cache
from repro.service import (
    BatchCoordinator,
    ElectionService,
    ServiceError,
    shard_index,
)
from repro.service import workers as worker_backends


@pytest.fixture(autouse=True)
def _detached_process_cache(isolated_refinement_cache):
    yield


MIXED_SWEEP = {"corpus": "mixed", "count": 200, "seed": 4}


# --------------------------------------------------------------------------- #
# shard routing
# --------------------------------------------------------------------------- #
def test_shard_index_is_deterministic_and_spreads():
    keys = [f"{value:032x}" for value in range(997)]
    first = [shard_index(key, 4) for key in keys]
    second = [shard_index(key, 4) for key in keys]
    assert first == second
    assert set(first) == {0, 1, 2, 3}, "997 distinct keys must hit every shard"
    # non-hex keys route through a stable digest, not the salted builtin hash
    assert shard_index("not hex!", 4) == shard_index("not hex!", 4)
    with pytest.raises(ValueError):
        shard_index("00", 0)


def test_same_graph_routes_to_same_shard_regardless_of_parameters():
    service = ElectionService(workers=1)
    try:
        base = {"spec": {"kind": "asymmetric-cycle", "params": {"n": 9}}}
        _, key_a, route_a = service._parse(dict(base))
        _, key_b, route_b = service._parse(dict(base, tasks=["S"], max_states=999))
        _, key_c, route_c = service._parse(dict(base, advice=True))
        # different answers -> different coalescing keys ...
        assert len({key_a, key_b, key_c}) == 3
        # ... but one graph -> one route key -> one warm shard
        assert route_a == route_b == route_c
        other = {"spec": {"kind": "asymmetric-cycle", "params": {"n": 11}}}
        _, _, route_other = service._parse(other)
        assert route_other != route_a
    finally:
        service.close()


def test_shard_caches_stay_sticky_for_repeat_submissions():
    payload = {"spec": {"kind": "asymmetric-cycle", "params": {"n": 9}}}
    with _RunningServer(
        ElectionService(backend="process", shards=2, workers=2)
    ) as running:
        for _ in range(3):
            running.post("/election", payload)
            time.sleep(0.05)  # let the coalescing future clear between posts
        stats = running.get("/stats")
    assert stats["service"]["backend"] == "process"
    per_shard = stats["shards"]["per_shard"]
    assert sum(row["dispatched"] for row in per_shard) == 3
    assert max(row["dispatched"] for row in per_shard) == 3, (
        "repeat submissions of one graph must all land on its owning shard"
    )
    # the owning shard refined the graph exactly once and served the rest warm
    assert stats["cache"]["misses"] == 1


# --------------------------------------------------------------------------- #
# thread/process equivalence
# --------------------------------------------------------------------------- #
def test_process_backend_byte_identical_to_thread_on_mixed_corpus():
    with _RunningServer(ElectionService(backend="thread", workers=4)) as running:
        thread_lines = _post_stream(running, {"sweep": MIXED_SWEEP})
    refinement_cache.clear()
    with _RunningServer(
        ElectionService(backend="process", shards=4, workers=4)
    ) as running:
        process_lines = _post_stream(running, {"sweep": MIXED_SWEEP})
        stats = running.get("/stats")
    assert stats["service"]["backend"] == "process"
    assert thread_lines[-1]["ok"] == MIXED_SWEEP["count"]
    # trace ids are per-request (and per-server-nonce) by design: the only
    # field allowed to differ between the two streams
    strip = lambda lines: [
        {k: v for k, v in line.items() if k != "trace_id"} for line in lines
    ]
    assert json.dumps(strip(thread_lines), sort_keys=True) == json.dumps(
        strip(process_lines), sort_keys=True
    ), "process-backend NDJSON must be byte-identical to the thread backend"
    # the work genuinely happened in the shard workers, not the parent
    assert stats["cache"]["misses"] > 0
    assert refinement_cache.stats()["misses"] == 0


# --------------------------------------------------------------------------- #
# recycling and crash recovery
# --------------------------------------------------------------------------- #
def test_worker_recycled_after_task_budget():
    items = [
        {"spec": {"kind": "asymmetric-cycle", "params": {"n": n}}} for n in (5, 6, 7)
    ]
    with _RunningServer(
        ElectionService(backend="process", shards=1, workers=1, recycle_after=2)
    ) as running:
        for item in items:
            running.post("/election", item)
        stats = running.get("/stats")
    shard = stats["shards"]["per_shard"][0]
    assert shard["dispatched"] == 3
    assert shard["recycles"] == 1, "the worker must retire after its 2-task budget"
    assert stats["shards"]["spawns"] == 2
    assert shard["crashes"] == 0
    # counters of the retired worker survive: all three tasks are accounted
    assert shard["jobs"] == 3
    assert stats["cache"]["misses"] == 3


def test_worker_crash_detected_and_task_resubmitted_once():
    with _RunningServer(
        ElectionService(backend="process", shards=1, workers=1)
    ) as running:
        running.post("/election", {"spec": {"kind": "star", "params": {"leaves": 4}}})
        stats = running.get("/stats")
        victim = stats["shards"]["per_shard"][0]["pid"]
        assert victim is not None
        os.kill(victim, signal.SIGKILL)
        deadline = time.time() + 10
        while time.time() < deadline:  # SIGKILL delivery is asynchronous
            try:
                os.kill(victim, 0)
            except ProcessLookupError:
                break
            time.sleep(0.01)
        # the next query lands on the dead shard, which respawns and resubmits
        result = running.post(
            "/election", {"spec": {"kind": "asymmetric-cycle", "params": {"n": 6}}}
        )
        stats = running.get("/stats")
    assert result["feasible"] is True
    shard = stats["shards"]["per_shard"][0]
    assert shard["crashes"] == 1
    assert shard["pid"] is not None and shard["pid"] != victim


def test_process_backend_falls_back_to_thread_when_unavailable(monkeypatch, capsys):
    def broken_backend(*args, **kwargs):
        raise OSError("no multiprocessing on this platform")

    monkeypatch.setattr(worker_backends, "ProcessShardBackend", broken_backend)
    service = ElectionService(backend="process", shards=2)
    try:
        assert service.backend == "thread"
        assert "falling back to the thread backend" in capsys.readouterr().err
    finally:
        service.close()


# --------------------------------------------------------------------------- #
# satellite: HTTP request parsing hardening
# --------------------------------------------------------------------------- #
def _raw_request(running, request: bytes) -> int:
    """Send raw bytes to the server; return the HTTP status code."""
    host, port = "127.0.0.1", running.server.port
    with socket.create_connection((host, port), timeout=10) as raw:
        raw.sendall(request)
        reader = raw.makefile("rb")
        status_line = reader.readline().decode("latin-1")
    return int(status_line.split()[1])


def test_negative_and_garbage_content_length_are_400():
    body = b'{"spec": {"kind": "star", "params": {"leaves": 3}}}'
    with _RunningServer(make_service(workers=1)) as running:
        for bad_length in (b"-5", b"12abc", b"+12", b"1_0", b"0x10"):
            status = _raw_request(
                running,
                b"POST /election HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: " + bad_length + b"\r\n\r\n" + body,
            )
            assert status == 400, f"Content-Length {bad_length!r} must be a 400"
        # a valid request on the same server still works
        status = _raw_request(
            running,
            b"POST /election HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body,
        )
        assert status == 200


def test_header_line_without_colon_is_400():
    with _RunningServer(make_service(workers=1)) as running:
        status = _raw_request(
            running,
            b"GET /healthz HTTP/1.1\r\nHost: x\r\nNotAHeaderLine\r\n\r\n",
        )
        assert status == 400
        status = _raw_request(
            running,
            b"GET /healthz HTTP/1.1\r\n: empty-name\r\n\r\n",
        )
        assert status == 400
        assert running.get("/healthz")["status"] == "ok"


# --------------------------------------------------------------------------- #
# satellite: sweep-status leak on emit failure
# --------------------------------------------------------------------------- #
def _stream_with_failing_emit(service: ElectionService, fail_at: int):
    """Run one 3-item sweep whose emit raises on call number ``fail_at``."""
    coordinator = BatchCoordinator(service)
    request = coordinator.prepare(
        json.dumps(
            {
                "items": [
                    {"spec": {"kind": "star", "params": {"leaves": n}}} for n in (3, 4, 5)
                ]
            }
        ).encode("utf-8")
    )
    calls = {"count": 0}

    async def emit(line):
        calls["count"] += 1
        if calls["count"] >= fail_at:
            raise ConnectionResetError("client went away")

    with pytest.raises(ConnectionResetError):
        asyncio.run(coordinator.stream(request, emit))
    return coordinator, request.sweep_id


def test_disconnect_before_header_marks_sweep_cancelled():
    service = ElectionService(workers=2)
    try:
        coordinator, sweep_id = _stream_with_failing_emit(service, fail_at=1)
        status = coordinator.sweep_status(sweep_id)
        assert status is not None and status["state"] == "cancelled"
    finally:
        service.close()


def test_disconnect_between_compute_and_emit_marks_sweep_cancelled():
    service = ElectionService(workers=2)
    try:
        # the header emits fine; the first *item* line fails after its
        # computation completed -- exactly the compute-to-emit gap
        coordinator, sweep_id = _stream_with_failing_emit(service, fail_at=2)
        status = coordinator.sweep_status(sweep_id)
        assert status is not None and status["state"] == "cancelled"
        assert coordinator.stats()["cancelled"] == 1
    finally:
        service.close()


# --------------------------------------------------------------------------- #
# satellite: deterministic, idempotent shutdown
# --------------------------------------------------------------------------- #
def test_thread_service_close_is_idempotent_and_joins_threads():
    service = ElectionService(workers=3)

    async def run_one():
        await service.query({"spec": {"kind": "star", "params": {"leaves": 3}}})

    asyncio.run(run_one())
    assert any(t.name.startswith("repro-serve") for t in threading.enumerate())
    service.close()
    service.close()  # idempotent
    assert not any(
        t.name.startswith("repro-serve") and t.is_alive() for t in threading.enumerate()
    ), "close() must join the compute pool's threads deterministically"


def test_process_service_close_terminates_workers_idempotently():
    service = ElectionService(backend="process", shards=2, workers=2)

    async def run_one():
        await service.query({"spec": {"kind": "star", "params": {"leaves": 3}}})

    asyncio.run(run_one())
    pids = [pid for pid in service._backend.shard_pids() if pid is not None]
    assert pids, "at least one shard worker must be live"
    service.close()
    service.close()  # idempotent
    deadline = time.time() + 10
    while time.time() < deadline:
        alive = []
        for pid in pids:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                continue
            alive.append(pid)
        if not alive:
            break
        time.sleep(0.05)
    assert not alive, f"shard workers {alive} must not outlive close()"
    # a closed service refuses new work instead of silently respawning
    with pytest.raises(ServiceError):
        asyncio.run(service.query({"spec": {"kind": "star", "params": {"leaves": 3}}}))
