"""Unit tests for path / port-sequence utilities."""

from __future__ import annotations

import pytest

from repro.portgraph import generators
from repro.portgraph.paths import (
    bfs_distances,
    complete_ports_of_path,
    diameter,
    distance,
    eccentricity,
    first_ports_of_simple_paths,
    follow_port_pairs,
    follow_ports,
    is_first_port_of_simple_path,
    is_simple_node_sequence,
    outgoing_ports_of_path,
    path_from_complete_ports,
    path_from_outgoing_ports,
    reachable_without,
    shortest_path,
    shortest_path_via_port,
)


class TestFollowing:
    def test_follow_ports_on_path_graph(self):
        graph = generators.path_graph(4)
        assert follow_ports(graph, 0, [0, 0, 0]) == [0, 1, 2, 3]
        assert follow_ports(graph, 3, [0, 1, 1]) == [3, 2, 1, 0]

    def test_follow_ports_invalid_port(self):
        graph = generators.path_graph(3)
        assert follow_ports(graph, 0, [1]) is None

    def test_follow_port_pairs(self):
        graph = generators.three_node_line()
        # node0 --(0,0)-- node1 --(1,0)-- node2
        assert follow_port_pairs(graph, 0, [(0, 0), (1, 0)]) == [0, 1, 2]
        assert follow_port_pairs(graph, 0, [(0, 1)]) is None

    def test_is_simple(self):
        assert is_simple_node_sequence([0, 1, 2])
        assert not is_simple_node_sequence([0, 1, 0])


class TestShortestPaths:
    def test_bfs_distances(self):
        graph = generators.path_graph(5)
        assert bfs_distances(graph, 0) == [0, 1, 2, 3, 4]

    def test_shortest_path_endpoints(self):
        graph = generators.asymmetric_cycle(6)
        path = shortest_path(graph, 0, 3)
        assert path is not None
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4
        assert shortest_path(graph, 2, 2) == [2]

    def test_distance_and_diameter(self):
        graph = generators.path_graph(6)
        assert distance(graph, 0, 5) == 5
        assert eccentricity(graph, 2) == 3
        assert diameter(graph) == 5

    def test_shortest_path_via_port(self):
        graph = generators.asymmetric_cycle(5)
        # from node 1, port towards node 2 vs towards node 0
        towards_2 = graph.port_to(1, 2)
        path = shortest_path_via_port(graph, 1, towards_2, 0)
        assert path is not None
        assert path[0] == 1 and path[-1] == 0
        assert path[1] == 2  # forced around the long way
        assert len(path) == 5

    def test_shortest_path_via_port_blocked(self):
        graph = generators.path_graph(4)
        # from node 1, taking the port towards node 2 can never reach node 0
        towards_2 = graph.port_to(1, 2)
        assert shortest_path_via_port(graph, 1, towards_2, 0) is None


class TestPortSequenceConversion:
    def test_outgoing_ports_roundtrip(self):
        graph = generators.random_connected_graph(10, extra_edges=5, seed=3)
        path = shortest_path(graph, 0, 7)
        ports = outgoing_ports_of_path(graph, path)
        assert path_from_outgoing_ports(graph, 0, ports) == path

    def test_complete_ports_roundtrip(self):
        graph = generators.random_connected_graph(10, extra_edges=5, seed=4)
        path = shortest_path(graph, 1, 8)
        sequence = complete_ports_of_path(graph, path)
        assert len(sequence) == 2 * (len(path) - 1)
        assert path_from_complete_ports(graph, 1, sequence) == path

    def test_complete_ports_rejects_odd_length(self):
        graph = generators.path_graph(3)
        assert path_from_complete_ports(graph, 0, (0, 0, 1)) is None


class TestPortElectionCondition:
    def test_reachable_without(self):
        graph = generators.path_graph(4)
        reach = reachable_without(graph, 0, 1)
        assert reach[0] and not reach[2] and not reach[3]

    def test_first_port_on_path_graph(self):
        graph = generators.path_graph(4)
        # from node 1, only the port towards node 0 starts a simple path to node 0
        towards_0 = graph.port_to(1, 0)
        towards_2 = graph.port_to(1, 2)
        assert is_first_port_of_simple_path(graph, 1, towards_0, 0)
        assert not is_first_port_of_simple_path(graph, 1, towards_2, 0)
        assert first_ports_of_simple_paths(graph, 1, 0) == [towards_0]

    def test_first_port_on_cycle_both_directions(self):
        graph = generators.asymmetric_cycle(5)
        ports = first_ports_of_simple_paths(graph, 2, 0)
        assert len(ports) == 2  # both directions around the cycle work

    def test_leader_itself_has_no_first_port(self):
        graph = generators.path_graph(3)
        assert first_ports_of_simple_paths(graph, 1, 1) == []
