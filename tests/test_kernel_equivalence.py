"""Kernel-vs-legacy equivalence suite.

The CSR kernel refactor (incremental worklist refinement, block-cut-tree PE
queries, distance-pruned PPE/CPPE searches) must be *observationally
identical* to the straightforward implementations it replaced.  This module
keeps faithful copies of the pre-refactor algorithms — full-sweep partition
refinement, per-removed-node BFS components, the unpruned joint sequence
search — and checks, on a randomized corpus and on members of the paper's
three lower-bound families, that

* the refinement partition at *every* depth is identical (and identical to a
  brute-force comparison of explicit view trees), and
* ψ_S / ψ_PE / ψ_PPE / ψ_CPPE agree exactly.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    complete_port_path_election_index,
    is_feasible,
    port_election_index,
    port_path_election_index,
    selection_index,
)
from repro.families import (
    build_gdk_member,
    build_jmuk_member,
    build_udk_member,
    jmuk_border_count,
    udk_tree_count,
)
from repro.kernel import make_refinement, numpy_available, use_backend
from repro.portgraph import generators
from repro.portgraph.graph import PortLabeledGraph
from repro.views import ViewRefinement, augmented_view, view_key


# --------------------------------------------------------------------------- #
# faithful copies of the pre-refactor implementations
# --------------------------------------------------------------------------- #
def legacy_color_history(graph, extra_depths: int = 1) -> List[List[int]]:
    """Full-sweep refinement colours per depth, up to the fixpoint (+ extras)."""

    def canonical(colors):
        mapping: Dict[int, int] = {}
        out = []
        for c in colors:
            if c not in mapping:
                mapping[c] = len(mapping)
            out.append(mapping[c])
        return out

    history = [canonical([graph.degree(v) for v in graph.nodes()])]
    prev_count = len(set(history[0]))
    stable_hit = 0
    while stable_hit < extra_depths:
        last = history[-1]
        signatures: Dict[Tuple, int] = {}
        new_colors = []
        for v in graph.nodes():
            signature = (last[v], tuple((q, last[u]) for u, q in graph.adjacency(v)))
            color = signatures.get(signature)
            if color is None:
                color = len(signatures)
                signatures[signature] = color
            new_colors.append(color)
        history.append(new_colors)
        if len(signatures) == prev_count:
            stable_hit += 1
        prev_count = len(signatures)
    return history


def _legacy_classes(colors: Sequence[int]) -> Dict[int, List[int]]:
    classes: Dict[int, List[int]] = {}
    for v, c in enumerate(colors):
        classes.setdefault(c, []).append(v)
    return classes


def _legacy_first_unique_depth(history: List[List[int]], stable: int) -> Optional[int]:
    for depth in range(stable + 1):
        counts: Dict[int, int] = {}
        for c in history[depth]:
            counts[c] = counts.get(c, 0) + 1
        if any(count == 1 for count in counts.values()):
            return depth
    return None


def legacy_selection_index(graph) -> Optional[int]:
    history = legacy_color_history(graph)
    return _legacy_first_unique_depth(history, len(history) - 2)


class LegacyRemovedNodeComponents:
    """The pre-refactor per-removed-node BFS component cache."""

    def __init__(self, graph) -> None:
        self._graph = graph
        self._cache: Dict[int, List[int]] = {}

    def components_without(self, removed: int) -> List[int]:
        cached = self._cache.get(removed)
        if cached is not None:
            return cached
        graph = self._graph
        comp = [-1] * graph.num_nodes
        comp[removed] = -2
        next_id = 0
        for start in graph.nodes():
            if comp[start] != -1:
                continue
            comp[start] = next_id
            queue = deque([start])
            while queue:
                x = queue.popleft()
                for y in graph.neighbors(x):
                    if comp[y] == -1:
                        comp[y] = next_id
                        queue.append(y)
            next_id += 1
        self._cache[removed] = comp
        return comp

    def first_port_ok(self, v: int, port: int, leader: int) -> bool:
        w = self._graph.neighbor(v, port)
        if w == leader:
            return True
        comp = self.components_without(v)
        return comp[w] == comp[leader]


def legacy_port_election_index(graph) -> Optional[int]:
    history = legacy_color_history(graph)
    stable = len(history) - 2
    start = _legacy_first_unique_depth(history, stable)
    if start is None:
        return None
    cut = LegacyRemovedNodeComponents(graph)
    depth = start
    while True:
        classes = _legacy_classes(history[min(depth, stable)])
        singletons = sorted(m[0] for m in classes.values() if len(m) == 1)
        for leader in singletons:
            feasible = True
            for members in classes.values():
                if members == [leader]:
                    continue
                min_degree = min(graph.degree(v) for v in members)
                if not any(
                    all(cut.first_port_ok(v, port, leader) for v in members)
                    for port in range(min_degree)
                ):
                    feasible = False
                    break
            if feasible:
                return depth
        if depth >= stable:
            return None
        depth += 1


def legacy_common_path_sequence(
    graph, members, leader, *, complete, max_states=200_000
) -> Optional[Tuple[int, ...]]:
    """The pre-refactor joint BFS: no distance pruning, state-count budget only."""
    if any(v == leader for v in members):
        return None
    max_length = graph.num_nodes - 1
    start_positions = tuple(members)
    start_visited = tuple(frozenset((v,)) for v in members)
    queue: deque = deque([(start_positions, start_visited, ())])
    seen = {(start_positions, start_visited)}
    while queue:
        positions, visited, sequence = queue.popleft()
        steps_taken = len(sequence) // 2 if complete else len(sequence)
        if steps_taken >= max_length:
            continue
        min_degree = min(graph.degree(v) for v in positions)
        for port in range(min_degree):
            next_nodes: List[int] = []
            incoming_ports = set()
            blocked = False
            for i, v in enumerate(positions):
                u, q = graph.endpoint(v, port)
                if u in visited[i]:
                    blocked = True
                    break
                next_nodes.append(u)
                incoming_ports.add(q)
            if blocked:
                continue
            if complete and len(incoming_ports) != 1:
                continue
            if complete:
                new_sequence = sequence + (port, next(iter(incoming_ports)))
            else:
                new_sequence = sequence + (port,)
            if all(u == leader for u in next_nodes):
                return new_sequence
            if any(u == leader for u in next_nodes):
                continue
            new_positions = tuple(next_nodes)
            new_visited = tuple(visited[i] | {next_nodes[i]} for i in range(len(positions)))
            key = (new_positions, new_visited)
            if key in seen:
                continue
            seen.add(key)
            if len(seen) > max_states:
                raise RuntimeError("legacy search limit")
            queue.append((new_positions, new_visited, new_sequence))
    return None


def legacy_path_index(graph, *, complete) -> Optional[int]:
    history = legacy_color_history(graph)
    stable = len(history) - 2
    start = _legacy_first_unique_depth(history, stable)
    if start is None:
        return None
    depth = start
    while True:
        classes = _legacy_classes(history[min(depth, stable)])
        singletons = sorted(m[0] for m in classes.values() if len(m) == 1)
        for leader in singletons:
            feasible = True
            for members in classes.values():
                if members == [leader]:
                    continue
                if (
                    legacy_common_path_sequence(
                        graph, members, leader, complete=complete
                    )
                    is None
                ):
                    feasible = False
                    break
            if feasible:
                return depth
        if depth >= stable:
            return None
        depth += 1


def assert_partitions_identical(graph, depths=None) -> None:
    refinement = ViewRefinement(graph)
    stable = refinement.ensure_stable()
    history = legacy_color_history(graph, extra_depths=2)
    if depths is None:
        depths = range(min(stable + 2, len(history)))
    for depth in depths:
        assert refinement.colors(depth) == history[depth], f"depth {depth}"
        assert refinement.num_classes(depth) == len(set(history[depth]))


# --------------------------------------------------------------------------- #
# randomized corpus
# --------------------------------------------------------------------------- #
graph_strategy = st.builds(
    generators.random_connected_graph,
    st.integers(min_value=3, max_value=12),
    st.integers(min_value=0, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestRandomizedEquivalence:
    @given(graph=graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_partitions_identical_at_every_depth(self, graph):
        assert_partitions_identical(graph)

    @given(graph=graph_strategy)
    @settings(max_examples=20, deadline=None)
    def test_partitions_match_brute_force_view_trees(self, graph):
        refinement = ViewRefinement(graph)
        for depth in range(4):
            keys = [view_key(augmented_view(graph, v, depth)) for v in graph.nodes()]
            assert len(set(keys)) == refinement.num_classes(depth)
            for u in graph.nodes():
                for v in graph.nodes():
                    assert (keys[u] == keys[v]) == refinement.views_equal(u, v, depth)

    @given(graph=graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_selection_and_port_election_indices_match_legacy(self, graph):
        refinement = ViewRefinement(graph)
        assert selection_index(graph, refinement=refinement) == legacy_selection_index(graph)
        assert port_election_index(graph, refinement=refinement) == legacy_port_election_index(
            graph
        )

    @given(
        graph=st.builds(
            generators.random_connected_graph,
            st.integers(min_value=3, max_value=10),
            st.integers(min_value=0, max_value=5),
            seed=st.integers(min_value=0, max_value=10_000),
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_path_election_indices_match_legacy(self, graph):
        refinement = ViewRefinement(graph)
        assert port_path_election_index(graph, refinement=refinement) == legacy_path_index(
            graph, complete=False
        )
        assert complete_port_path_election_index(
            graph, refinement=refinement
        ) == legacy_path_index(graph, complete=True)


# --------------------------------------------------------------------------- #
# the seeded scenario corpus: differential conformance
# --------------------------------------------------------------------------- #
def _corpus_graph(index: int, seed: int):
    """The ``index``-th graph of the mixed corpus at ``seed`` (prefix-stable)."""
    from repro.scenarios import corpus_specs

    return corpus_specs(index + 1, seed=seed, corpus="mixed")[index].build()


#: Random draws over the whole mixed corpus -- every scenario family
#: (random-regular, connected Erdős–Rényi, circulant, torus, twisted torus,
#: de Bruijn-like) plus the classic generators, at every corpus seed.
corpus_strategy = st.builds(
    _corpus_graph,
    st.integers(min_value=0, max_value=21),
    st.integers(min_value=0, max_value=2_000),
)


class TestCorpusConformance:
    """The kernel path must agree with the legacy ``views/`` path on the corpus.

    The randomized-equivalence suite above draws from one generator family;
    the scenario corpus deliberately mixes regular, heavy-edged, symmetric
    and shift-structured graphs, which exercise different refinement
    splitting orders, block-cut shapes and joint-search prunings.
    """

    @given(graph=corpus_strategy)
    @settings(max_examples=30, deadline=None)
    def test_partitions_identical_at_every_depth(self, graph):
        assert_partitions_identical(graph)

    @given(graph=corpus_strategy)
    @settings(max_examples=30, deadline=None)
    def test_feasibility_and_polynomial_indices_match_legacy(self, graph):
        refinement = ViewRefinement(graph)
        legacy_psi_s = legacy_selection_index(graph)
        assert is_feasible(graph, refinement=refinement) == (legacy_psi_s is not None)
        assert selection_index(graph, refinement=refinement) == legacy_psi_s
        assert port_election_index(graph, refinement=refinement) == legacy_port_election_index(
            graph
        )

    @given(graph=corpus_strategy)
    @settings(max_examples=12, deadline=None)
    def test_path_election_indices_match_legacy(self, graph):
        refinement = ViewRefinement(graph)
        assert port_path_election_index(graph, refinement=refinement) == legacy_path_index(
            graph, complete=False
        )
        assert complete_port_path_election_index(
            graph, refinement=refinement
        ) == legacy_path_index(graph, complete=True)


# --------------------------------------------------------------------------- #
# the three lower-bound families
# --------------------------------------------------------------------------- #
class TestFamilyEquivalence:
    def test_gdk_member_full_equivalence(self):
        graph = build_gdk_member(4, 1, 3).graph
        assert_partitions_identical(graph)
        assert selection_index(graph) == legacy_selection_index(graph) == 1
        assert port_election_index(graph) == legacy_port_election_index(graph) == 2
        assert port_path_election_index(graph) == legacy_path_index(graph, complete=False)
        assert complete_port_path_election_index(graph) == legacy_path_index(
            graph, complete=True
        )

    def test_udk_member_refinement_and_poly_indices(self):
        sigma = tuple(1 for _ in range(udk_tree_count(4, 1)))
        graph = build_udk_member(4, 1, sigma).graph
        assert_partitions_identical(graph)
        assert selection_index(graph) == legacy_selection_index(graph) == 1
        assert port_election_index(graph) == legacy_port_election_index(graph) == 1

    @pytest.mark.slow
    def test_jmuk_member_refinement_and_selection(self):
        # J_{2,4} is the smallest member of the family (n > 10^5): the
        # exponential PPE/CPPE searches are out of reach for the legacy
        # implementation by design, so the equivalence check covers the
        # partitions around the interesting depths and the polynomial ψ_S
        # (ψ_PE = ψ_S = k on this class is asserted against the paper's value).
        k = 4
        y = tuple(0 for _ in range(2 ** (jmuk_border_count(2, k) - 1)))
        graph = build_jmuk_member(2, k, y).graph
        refinement = ViewRefinement(graph)
        history = legacy_color_history(graph, extra_depths=1)
        for depth in range(min(k + 2, len(history))):
            assert refinement.colors(depth) == history[depth], f"depth {depth}"
        assert selection_index(graph, refinement=refinement) == k
        assert _legacy_first_unique_depth(history[: k + 2], k + 1) == k
        assert port_election_index(graph, refinement=refinement) == k


# --------------------------------------------------------------------------- #
# three-way matrix: legacy views / python kernel / numpy kernel
# --------------------------------------------------------------------------- #
def _fresh_copy(graph) -> PortLabeledGraph:
    """An independent instance of the same labeled graph (no memoised state)."""
    return PortLabeledGraph(
        [graph.adjacency(v) for v in graph.nodes()], name=graph.name, validate=False
    )


def _three_way_partitions_identical(graph) -> None:
    """Legacy full-sweep, python kernel and numpy kernel must agree exactly."""
    history = legacy_color_history(graph, extra_depths=1)
    engines = {}
    for backend in ("python", "numpy"):
        with use_backend(backend):
            engines[backend] = make_refinement(graph.csr())
    python_engine = engines["python"]
    numpy_engine = engines["numpy"]
    assert type(python_engine).__name__ == "CSRPartitionRefinement"
    assert type(numpy_engine).__name__ == "NumpyPartitionRefinement"
    stable = python_engine.ensure_stable()
    assert numpy_engine.ensure_stable() == stable
    assert python_engine.class_counts == numpy_engine.class_counts
    assert python_engine.computed_depth == numpy_engine.computed_depth
    tables = python_engine.canonical_tables()
    assert tables == numpy_engine.canonical_tables()
    for depth in range(min(len(tables), len(history))):
        assert tables[depth] == history[depth], f"depth {depth}"
    for depth in range(stable + 1):
        python_colors = python_engine.colors_at(depth)
        numpy_colors = numpy_engine.colors_at(depth)
        # byte identity, not just value equality: same array typecode too
        assert python_colors.typecode == numpy_colors.typecode
        assert python_colors.tobytes() == numpy_colors.tobytes()
        assert python_engine.members_at(depth) == numpy_engine.members_at(depth)
        assert python_engine.unique_at(depth) == numpy_engine.unique_at(depth)
        assert python_engine.num_classes_at(depth) == numpy_engine.num_classes_at(depth)


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
class TestThreeWayBackendMatrix:
    """The numpy kernel joins the legacy-vs-python contract as a third column."""

    @given(graph=graph_strategy)
    @settings(max_examples=30, deadline=None)
    def test_partitions_identical_across_all_three(self, graph):
        _three_way_partitions_identical(graph)

    @given(graph=corpus_strategy)
    @settings(max_examples=20, deadline=None)
    def test_corpus_partitions_identical_across_all_three(self, graph):
        _three_way_partitions_identical(graph)

    @given(graph=graph_strategy)
    @settings(max_examples=12, deadline=None)
    def test_indices_identical_across_backends(self, graph):
        from repro.runner import refinement_cache

        observed = {}
        for backend in ("python", "numpy"):
            with use_backend(backend):
                refinement_cache.clear()  # no cross-backend entry reuse
                fresh = _fresh_copy(graph)
                refinement = ViewRefinement(fresh)
                observed[backend] = (
                    selection_index(fresh, refinement=refinement),
                    port_election_index(fresh, refinement=refinement),
                    port_path_election_index(fresh, refinement=refinement),
                    complete_port_path_election_index(fresh, refinement=refinement),
                    fresh.fingerprint(),
                )
        refinement_cache.clear()
        assert observed["python"] == observed["numpy"]

    def test_family_members_identical_across_backends(self):
        members = [
            build_gdk_member(4, 1, 3).graph,
            build_udk_member(4, 1, tuple(1 for _ in range(udk_tree_count(4, 1)))).graph,
        ]
        for graph in members:
            _three_way_partitions_identical(graph)
