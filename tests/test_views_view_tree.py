"""Unit tests for explicit view trees and their encodings."""

from __future__ import annotations

import pytest

from repro.portgraph import generators
from repro.views import (
    ViewNode,
    augmented_view,
    compare_views,
    lexicographically_smallest_view,
    truncated_view,
    view_from_symbols,
    view_key,
    view_of_leaf_degrees,
    view_to_symbols,
)


class TestViewStructure:
    def test_depth_zero_view_is_just_the_degree(self):
        graph = generators.star_graph(3)
        view = augmented_view(graph, 0, 0)
        assert view.degree == 3
        assert view.children == ()
        assert view.height == 0
        assert view.num_tree_nodes == 1

    def test_view_children_follow_ports_in_order(self):
        graph = generators.three_node_line()
        view = augmented_view(graph, 1, 1)
        assert view.degree == 2
        assert [p for p, _q, _c in view.children] == [0, 1]
        in_port_to_0 = graph.edge_ports(1, 0)[1]
        assert view.children[0][1] == in_port_to_0

    def test_view_includes_backtracking_paths(self):
        # The view is the tree of *all* paths, including ones that go back
        # along the edge they came from, so every non-frontier tree node has
        # exactly `degree` children.
        graph = generators.path_graph(3)
        view = augmented_view(graph, 0, 2)
        # root has 1 child (degree 1), that child (the middle node, degree 2)
        # has 2 children (one of which returns to the start node).
        assert len(view.children) == 1
        middle = view.children[0][2]
        assert middle.degree == 2
        assert len(middle.children) == 2

    def test_view_size_growth(self):
        graph = generators.cycle_graph(5)
        for depth in range(4):
            view = augmented_view(graph, 0, depth)
            assert view.height == depth
            assert view.num_tree_nodes == 2 ** (depth + 1) - 1

    def test_truncated_view_has_unlabeled_frontier(self):
        graph = generators.path_graph(4)
        plain = truncated_view(graph, 0, 2)
        frontier_child = plain.children[0][2].children[0][2]
        assert frontier_child.degree is None

    def test_paths_enumeration(self):
        graph = generators.three_node_line()
        view = augmented_view(graph, 0, 2)
        paths = list(view.paths())
        # one path per frontier node: the degree-1 root has 1 child, which has 2 children
        assert len(paths) == 2
        assert ((0, 0), (0, 0)) in paths
        assert ((0, 0), (1, 0)) in paths

    def test_leaf_degrees(self):
        graph = generators.star_graph(2)
        view = augmented_view(graph, 0, 1)
        assert view_of_leaf_degrees(view) == [1, 1]

    def test_negative_depth_rejected(self):
        graph = generators.path_graph(3)
        with pytest.raises(ValueError):
            augmented_view(graph, 0, -1)
        with pytest.raises(ValueError):
            truncated_view(graph, 0, -1)


class TestViewEquality:
    def test_symmetric_cycle_views_all_equal(self):
        graph = generators.cycle_graph(6)
        keys = {view_key(augmented_view(graph, v, 3)) for v in graph.nodes()}
        assert len(keys) == 1

    def test_twins_at_depth_1_split_at_depth_2(self):
        # In the asymmetric cycle, nodes 2 and 3 are too far from the single
        # port irregularity (at node 0) to notice it within one round.
        graph = generators.asymmetric_cycle(6)
        assert augmented_view(graph, 2, 1) == augmented_view(graph, 3, 1)
        assert augmented_view(graph, 2, 2) != augmented_view(graph, 3, 2)

    def test_view_equality_vs_hash(self):
        graph = generators.cycle_graph(4)
        a = augmented_view(graph, 0, 2)
        b = augmented_view(graph, 2, 2)
        assert a == b
        assert hash(a) == hash(b)

    def test_compare_views_total_order(self):
        graph = generators.path_graph(4)
        end = augmented_view(graph, 0, 1)
        middle = augmented_view(graph, 1, 1)
        assert compare_views(end, middle) != 0
        assert compare_views(end, end) == 0
        assert compare_views(end, middle) == -compare_views(middle, end)

    def test_lexicographically_smallest(self):
        graph = generators.path_graph(5)
        views = [augmented_view(graph, v, 2) for v in graph.nodes()]
        smallest = lexicographically_smallest_view(views)
        assert smallest is not None
        assert min(view_key(v) for v in views) == view_key(smallest)
        assert lexicographically_smallest_view([]) is None


class TestViewEncoding:
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_symbols_roundtrip(self, depth):
        graph = generators.random_connected_graph(8, extra_edges=4, seed=13)
        for node in (0, 3, 7):
            view = augmented_view(graph, node, depth)
            symbols = view_to_symbols(view)
            assert view_from_symbols(symbols) == view

    def test_symbols_reject_plain_views(self):
        graph = generators.path_graph(4)
        with pytest.raises(ValueError):
            view_to_symbols(truncated_view(graph, 0, 2))

    def test_symbols_reject_trailing_garbage(self):
        graph = generators.path_graph(3)
        symbols = view_to_symbols(augmented_view(graph, 0, 1))
        with pytest.raises(ValueError):
            view_from_symbols(tuple(symbols) + (7,))

    def test_symbols_reject_empty(self):
        with pytest.raises(ValueError):
            view_from_symbols(())

    def test_distinct_views_have_distinct_symbols(self):
        graph = generators.path_graph(5)
        symbols = {view_to_symbols(augmented_view(graph, v, 2)) for v in graph.nodes()}
        keys = {view_key(augmented_view(graph, v, 2)) for v in graph.nodes()}
        assert len(symbols) == len(keys)
