"""Tests for the advice framework: Theorem 2.2 scheme and universal map-advice schemes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.advice import (
    MapAdviceOracle,
    NoAdviceOracle,
    SelectionAdviceOracle,
    decode_map_advice,
    decode_view_advice,
    encode_map_advice,
    encode_view_advice,
    map_advice_bits,
    measured_selection_advice_bits,
    min_advice_bits_to_distinguish,
    num_advice_strings_up_to,
    pigeonhole_forces_collision,
    selection_advice_upper_bound_bits,
    selection_with_advice_scheme,
    universal_scheme,
)
from repro.core import Task, all_election_indices, is_feasible, selection_index, validate_outcome
from repro.portgraph import generators
from repro.views import augmented_view


class TestSelectionAdviceScheme:
    def test_runs_in_minimum_time_and_validates(self, small_feasible_graphs):
        scheme = selection_with_advice_scheme()
        for graph in small_feasible_graphs:
            outcome = scheme.run(graph)
            assert validate_outcome(graph, outcome).ok, graph.name
            assert outcome.rounds == selection_index(graph), graph.name
            assert outcome.advice_bits > 0

    def test_infeasible_graph_raises(self):
        with pytest.raises(ValueError):
            SelectionAdviceOracle().advise(generators.cycle_graph(4))

    def test_depth_override(self):
        graph = generators.asymmetric_cycle(6)
        outcome = selection_with_advice_scheme(depth=3).run(graph)
        assert outcome.rounds == 3
        assert validate_outcome(graph, outcome).ok

    def test_depth_override_below_index_rejected(self):
        graph = generators.asymmetric_cycle(6)  # ψ_S = 1
        with pytest.raises(ValueError):
            SelectionAdviceOracle(depth=0).advise(graph)

    def test_view_advice_roundtrip(self):
        graph = generators.random_connected_graph(9, extra_edges=3, seed=5)
        view = augmented_view(graph, 0, 2)
        assert decode_view_advice(encode_view_advice(view)) == view

    def test_measured_advice_within_theorem_2_2_bound(self, small_feasible_graphs):
        for graph in small_feasible_graphs:
            k = selection_index(graph)
            measured = measured_selection_advice_bits(graph)
            bound = selection_advice_upper_bound_bits(graph.max_degree, k)
            assert measured <= bound, (graph.name, measured, bound)

    @given(seed=st.integers(min_value=0, max_value=300))
    @settings(max_examples=20, deadline=None)
    def test_property_scheme_correct_on_random_feasible_graphs(self, seed):
        graph = generators.random_connected_graph(8, extra_edges=3, seed=seed)
        if not is_feasible(graph):
            return
        outcome = selection_with_advice_scheme().run(graph)
        assert validate_outcome(graph, outcome).ok
        assert outcome.rounds == selection_index(graph)


class TestMapAdviceSchemes:
    def test_map_roundtrip(self):
        graph = generators.random_connected_graph(12, extra_edges=6, seed=9)
        assert decode_map_advice(encode_map_advice(graph)) == graph
        assert map_advice_bits(graph) == len(encode_map_advice(graph))

    @pytest.mark.parametrize("task", list(Task))
    def test_universal_scheme_runs_in_minimum_time(self, task, three_line):
        indices = all_election_indices(three_line)
        outcome = universal_scheme(task).run(three_line)
        assert validate_outcome(three_line, outcome).ok
        assert outcome.rounds == indices[task]

    @pytest.mark.parametrize("task", list(Task))
    def test_universal_scheme_on_assorted_graphs(self, task, small_feasible_graphs):
        scheme = universal_scheme(task)
        for graph in small_feasible_graphs[:4]:
            indices = all_election_indices(graph)
            outcome = scheme.run(graph)
            assert validate_outcome(graph, outcome).ok, (graph.name, task)
            assert outcome.rounds == indices[task]

    def test_no_advice_oracle(self):
        graph = generators.path_graph(3)
        oracle = NoAdviceOracle()
        assert oracle.advise(graph) is None
        assert oracle.advice_size(graph) == 0

    def test_map_oracle_size_positive(self):
        graph = generators.path_graph(3)
        assert MapAdviceOracle().advice_size(graph) > 0


class TestCounting:
    def test_num_advice_strings(self):
        assert num_advice_strings_up_to(0) == 1  # only the empty string
        assert num_advice_strings_up_to(1) == 3
        assert num_advice_strings_up_to(3) == 15

    def test_pigeonhole(self):
        assert pigeonhole_forces_collision(16, 3)
        assert not pigeonhole_forces_collision(15, 3)

    def test_min_bits_to_distinguish(self):
        assert min_advice_bits_to_distinguish(1) == 0
        assert min_advice_bits_to_distinguish(3) == 1
        assert min_advice_bits_to_distinguish(4) == 2
        assert min_advice_bits_to_distinguish(10**6) == 19

    def test_counting_input_validation(self):
        with pytest.raises(ValueError):
            num_advice_strings_up_to(-1)
        with pytest.raises(ValueError):
            min_advice_bits_to_distinguish(0)
        with pytest.raises(ValueError):
            pigeonhole_forces_collision(-1, 3)
