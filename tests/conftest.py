"""Shared fixtures for the test suite.

Seed discipline
---------------
Every randomised test input in this suite derives from :data:`TEST_CORPUS_SEED`
through the :func:`corpus_rng_factory` fixture or the pinned corpus fixtures
below -- no test seeds or samples the *global* ``random`` module.  Global
seeding is what caused seed drift between suites: whichever test ran first
moved the shared Mersenne–Twister state, so "random" fixtures silently
depended on execution order.  A per-purpose ``random.Random`` instance keyed
by a name (plus the pinned suite seed) gives every consumer its own
reproducible stream regardless of test ordering or parallelism.
"""

from __future__ import annotations

import random

import pytest

from repro.portgraph import generators

#: The single pinned seed behind every randomised fixture of the suite.
TEST_CORPUS_SEED = 20260728

#: Size of the shared scenario-corpus sample (kept small: the corpus
#: fixtures feed exact ψ searches and LOCAL-model simulations).
CORPUS_SAMPLE_COUNT = 33


@pytest.fixture
def isolated_refinement_cache():
    """A detached, empty process-wide refinement cache around one test.

    The service suites opt in with a per-file autouse wrapper; the logic
    lives here so cache-detachment semantics cannot silently diverge
    between files.
    """
    from repro.runner import refinement_cache

    refinement_cache.attach_store(None)
    refinement_cache.clear()
    yield refinement_cache
    refinement_cache.attach_store(None)
    refinement_cache.clear()


@pytest.fixture(scope="session")
def corpus_rng_factory():
    """``factory(name, seed=None) -> random.Random``: isolated, reproducible streams.

    Without ``seed``, the stream is derived from ``name`` and the suite's
    pinned :data:`TEST_CORPUS_SEED`; pass an explicit ``seed`` only to keep
    continuity with values a test pinned historically.
    """

    def factory(name: str, seed=None) -> random.Random:
        if seed is not None:
            return random.Random(seed)
        return random.Random(f"{name}:{TEST_CORPUS_SEED}")

    return factory


@pytest.fixture(scope="session")
def corpus_sample_specs():
    """A pinned slice of the mixed scenario corpus (deterministic, prefix-stable)."""
    from repro.scenarios import corpus_specs

    return corpus_specs(CORPUS_SAMPLE_COUNT, seed=TEST_CORPUS_SEED, corpus="mixed")


@pytest.fixture(scope="session")
def corpus_sample_graphs(corpus_sample_specs):
    """The built graphs of the pinned corpus sample (session-cached)."""
    return [spec.build() for spec in corpus_sample_specs]


@pytest.fixture(scope="session")
def feasible_corpus_graphs(corpus_sample_graphs):
    """Small feasible corpus graphs: the simulation-certification population."""
    from repro.core import is_feasible

    return [
        graph
        for graph in corpus_sample_graphs
        if graph.num_nodes <= 10 and is_feasible(graph)
    ]


@pytest.fixture
def three_line():
    """The paper's 3-node line with ports 0,0,1,0 (ψ_CPPE = 1)."""
    return generators.three_node_line()


@pytest.fixture
def small_feasible_graphs():
    """A handful of small feasible graphs covering different shapes."""
    return [
        generators.three_node_line(),
        generators.path_graph(4),
        generators.path_graph(5),
        generators.star_graph(3),
        generators.asymmetric_cycle(5),
        generators.asymmetric_cycle(6),
        generators.random_connected_graph(8, extra_edges=3, seed=1),
        generators.random_connected_graph(9, extra_edges=4, seed=2),
    ]


@pytest.fixture
def infeasible_graphs():
    """Graphs in which leader election is impossible (symmetric views)."""
    return [
        generators.two_node_graph(),
        generators.cycle_graph(4),
        generators.cycle_graph(6),
        generators.rotational_complete_graph(3),
        generators.rotational_complete_graph(5),
    ]
