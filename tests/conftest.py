"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.portgraph import generators


@pytest.fixture
def three_line():
    """The paper's 3-node line with ports 0,0,1,0 (ψ_CPPE = 1)."""
    return generators.three_node_line()


@pytest.fixture
def small_feasible_graphs():
    """A handful of small feasible graphs covering different shapes."""
    return [
        generators.three_node_line(),
        generators.path_graph(4),
        generators.path_graph(5),
        generators.star_graph(3),
        generators.asymmetric_cycle(5),
        generators.asymmetric_cycle(6),
        generators.random_connected_graph(8, extra_edges=3, seed=1),
        generators.random_connected_graph(9, extra_edges=4, seed=2),
    ]


@pytest.fixture
def infeasible_graphs():
    """Graphs in which leader election is impossible (symmetric views)."""
    return [
        generators.two_node_graph(),
        generators.cycle_graph(4),
        generators.cycle_graph(6),
        generators.rotational_complete_graph(3),
        generators.rotational_complete_graph(5),
    ]
