"""Dual-backend byte-identity property suite.

The numpy kernel backend must be *byte-identical* to the pure-python one in
everything observable -- canonical colour tables, ψ indices, advice
bitstrings, store record bytes, fingerprints -- across the seeded scenario
corpus and the known hard cases (the de Bruijn fingerprint-collision
regression pair).  These properties are what lets every layer above the
kernel (cache, store, runner, service) treat the backend as a pure speed
knob; the selection machinery itself (env var, pinning, fallback) is
exercised here too.

Everything backend-comparing is skipped cleanly when numpy is absent --
that environment instead exercises the fallback path of the whole suite.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    complete_port_path_election_index,
    port_election_index,
    selection_index,
)
from repro.kernel import (
    BACKEND_ENV_VAR,
    active_backend,
    as_numpy,
    bfs_distances_csr,
    from_numpy,
    make_refinement,
    numpy_available,
    refinement_from_stored,
    resolve_backend,
    use_backend,
)
from repro.portgraph import generators
from repro.portgraph.graph import PortLabeledGraph
from repro.runner import refinement_cache
from repro.scenarios import corpus_specs
from repro.store import ArtifactRecord

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")


def _fresh_copy(graph) -> PortLabeledGraph:
    """An independent instance of the same labeled graph (no memoised state)."""
    return PortLabeledGraph(
        [graph.adjacency(v) for v in graph.nodes()], name=graph.name, validate=False
    )


def _per_backend(graph, compute):
    """``compute(fresh_graph)`` under each backend, with the cache isolated."""
    observed = {}
    for backend in ("python", "numpy"):
        with use_backend(backend):
            refinement_cache.clear()
            observed[backend] = compute(_fresh_copy(graph))
    refinement_cache.clear()
    return observed


def _corpus_graph(index: int, seed: int):
    return corpus_specs(index + 1, seed=seed, corpus="mixed")[index].build()


corpus_strategy = st.builds(
    _corpus_graph,
    st.integers(min_value=0, max_value=21),
    st.integers(min_value=0, max_value=2_000),
)

small_graph_strategy = st.builds(
    generators.random_connected_graph,
    st.integers(min_value=3, max_value=11),
    st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)


# --------------------------------------------------------------------------- #
# backend selection machinery
# --------------------------------------------------------------------------- #
class TestBackendSelection:
    def test_resolve_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            resolve_backend("fortran")

    def test_python_always_resolvable(self):
        assert resolve_backend("python") == "python"

    def test_use_backend_restores_prior_selection(self):
        before_env = os.environ.get(BACKEND_ENV_VAR)
        before = active_backend()
        with use_backend("python") as resolved:
            assert resolved == "python"
            assert active_backend() == "python"
            assert os.environ[BACKEND_ENV_VAR] == "python"
        assert active_backend() == before
        assert os.environ.get(BACKEND_ENV_VAR) == before_env

    def test_auto_resolves_to_numpy_exactly_when_available(self):
        with use_backend("auto") as resolved:
            assert resolved == ("numpy" if numpy_available() else "python")

    @pytest.mark.skipif(numpy_available(), reason="needs a numpy-free interpreter")
    def test_forcing_numpy_without_numpy_raises(self):
        with pytest.raises(RuntimeError):
            resolve_backend("numpy")

    def test_engine_type_follows_backend(self):
        graph = generators.asymmetric_cycle(7)
        with use_backend("python"):
            assert type(make_refinement(graph.csr())).__name__ == "CSRPartitionRefinement"
        if numpy_available():
            with use_backend("numpy"):
                assert (
                    type(make_refinement(graph.csr())).__name__
                    == "NumpyPartitionRefinement"
                )


# --------------------------------------------------------------------------- #
# byte-identity properties
# --------------------------------------------------------------------------- #
@needs_numpy
class TestByteIdentity:
    @given(graph=corpus_strategy)
    @settings(max_examples=25, deadline=None)
    def test_colour_tables_byte_identical_on_corpus(self, graph):
        def tables(fresh):
            engine = fresh.refinement_engine()
            engine.ensure_stable()
            return [colors.tobytes() for colors in map(engine.colors_at, range(engine.computed_depth + 1))]

        observed = _per_backend(graph, tables)
        assert observed["python"] == observed["numpy"]

    @given(graph=small_graph_strategy)
    @settings(max_examples=15, deadline=None)
    def test_psi_indices_identical(self, graph):
        def indices(fresh):
            return (
                selection_index(fresh),
                port_election_index(fresh),
                complete_port_path_election_index(fresh),
            )

        observed = _per_backend(graph, indices)
        assert observed["python"] == observed["numpy"]

    @given(graph=small_graph_strategy)
    @settings(max_examples=15, deadline=None)
    def test_advice_bitstrings_identical(self, graph):
        from repro.advice import selection_with_advice_scheme

        def advice(fresh):
            scheme = selection_with_advice_scheme()
            try:
                bits = scheme.oracle.advise(fresh)
            except ValueError:
                return None  # infeasible: identically so under both backends
            assert set(bits) <= {"0", "1"}
            return bits

        observed = _per_backend(graph, advice)
        assert observed["python"] == observed["numpy"]

    @given(graph=corpus_strategy)
    @settings(max_examples=15, deadline=None)
    def test_store_record_bytes_identical(self, graph):
        def record_bytes(fresh):
            return ArtifactRecord.from_computed(fresh).to_bytes()

        observed = _per_backend(graph, record_bytes)
        assert observed["python"] == observed["numpy"]

    @given(graph=corpus_strategy)
    @settings(max_examples=20, deadline=None)
    def test_fingerprints_identical(self, graph):
        observed = _per_backend(graph, lambda fresh: fresh.fingerprint())
        assert observed["python"] == observed["numpy"]

    @given(graph=small_graph_strategy, source=st.integers(min_value=0, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_bfs_distances_identical(self, graph, source):
        source %= graph.num_nodes
        csr = graph.csr()
        with use_backend("python"):
            python_dist = bfs_distances_csr(csr, source)
        with use_backend("numpy"):
            numpy_dist = bfs_distances_csr(csr, source)
        assert python_dist.tobytes() == numpy_dist.tobytes()

    @given(graph=small_graph_strategy)
    @settings(max_examples=10, deadline=None)
    def test_from_stored_serves_python_tables_unchanged(self, graph):
        csr = graph.csr()
        with use_backend("python"):
            python_engine = make_refinement(csr)
        stable = python_engine.ensure_stable()
        tables = python_engine.canonical_tables()
        with use_backend("numpy"):
            warmed = refinement_from_stored(csr, tables, stable)
        assert type(warmed).__name__ == "NumpyPartitionRefinement"
        assert warmed.passes == 0
        assert warmed.stable_depth == stable
        assert warmed.canonical_tables() == tables
        for depth in range(stable + 1):
            assert warmed.colors_at(depth).tobytes() == python_engine.colors_at(depth).tobytes()
            assert warmed.members_at(depth) == python_engine.members_at(depth)
        assert warmed.passes == 0  # queries never trigger refinement

    def test_colour_entries_are_plain_python_ints(self):
        # numpy scalars leaking into the public surface would break JSON
        # serialisation downstream (service responses, NDJSON streams)
        graph = generators.asymmetric_cycle(9)
        with use_backend("numpy"):
            engine = make_refinement(graph.csr())
        stable = engine.ensure_stable()
        for depth in range(stable + 1):
            assert all(type(c) is int for c in engine.colors_at(depth))
            assert all(
                type(v) is int for group in engine.members_at(depth) for v in group
            )
            assert all(type(v) is int for v in engine.unique_at(depth))


# --------------------------------------------------------------------------- #
# the de Bruijn fingerprint-collision regression pair
# --------------------------------------------------------------------------- #
@needs_numpy
class TestDeBruijnRegressionPair:
    """The pair that aliased under 3-round fingerprints must behave the same
    under both backends: identical per-backend fingerprints, and still
    *distinct* from each other at the fixpoint."""

    def _pair(self):
        from test_portgraph_fingerprint import (
            debruijn_fkm,
            debruijn_prefer_one,
            leaf_decorated_cycle,
        )

        return (
            leaf_decorated_cycle(debruijn_prefer_one(7), "debruijn-prefer-one"),
            leaf_decorated_cycle(debruijn_fkm(7), "debruijn-fkm"),
        )

    def test_pair_fingerprints_backend_identical_and_distinct(self):
        first, second = self._pair()
        first_prints = _per_backend(first, lambda fresh: fresh.fingerprint())
        second_prints = _per_backend(second, lambda fresh: fresh.fingerprint())
        assert first_prints["python"] == first_prints["numpy"]
        assert second_prints["python"] == second_prints["numpy"]
        assert first_prints["python"] != second_prints["python"]

    def test_pair_colour_tables_byte_identical(self):
        for graph in self._pair():
            def tables(fresh):
                engine = fresh.refinement_engine()
                stable = engine.ensure_stable()
                return [engine.colors_at(d).tobytes() for d in range(stable + 1)]

            observed = _per_backend(graph, tables)
            assert observed["python"] == observed["numpy"]


# --------------------------------------------------------------------------- #
# the numpy bridge
# --------------------------------------------------------------------------- #
@needs_numpy
class TestNumpyBridge:
    @given(graph=small_graph_strategy)
    @settings(max_examples=20, deadline=None)
    def test_as_numpy_round_trips_through_from_numpy(self, graph):
        csr = graph.csr()
        rebuilt = from_numpy(as_numpy(csr))
        assert rebuilt.num_nodes == csr.num_nodes
        assert rebuilt.num_edges == csr.num_edges
        assert rebuilt.offsets == csr.offsets
        assert rebuilt.neighbors == csr.neighbors
        assert rebuilt.reverse_ports == csr.reverse_ports

    def test_as_numpy_views_are_zero_copy(self):
        import numpy

        csr = generators.asymmetric_cycle(8).csr()
        views = as_numpy(csr)
        for name in ("offsets", "neighbors", "ports", "reverse_ports"):
            assert views[name].base is not None  # a view, not an owning copy
        assert numpy.shares_memory(
            views["offsets"], numpy.frombuffer(csr.offsets, dtype=views["offsets"].dtype)
        )

    def test_from_numpy_rejects_malformed_arrays(self):
        import numpy

        with pytest.raises(ValueError):
            from_numpy(
                {
                    "offsets": numpy.asarray([0, 2]),
                    "neighbors": numpy.asarray([1]),  # offsets say two darts
                    "reverse_ports": numpy.asarray([0]),
                }
            )
