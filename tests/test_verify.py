"""The bounded model checker and the service protocol models.

Two kinds of guarantees: the checker machinery itself is sound (finds
planted violations, reports shortest counterexample traces, respects its
bounds), and the shipped protocol models verify clean *and* are
demonstrably non-vacuous (the seeded known-bad mutants are caught).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.service.protocol import (
    ProtocolViolation,
    SWEEP_TERMINAL,
    WindowLedger,
    sweep_transition,
    worker_transition,
)
from repro.verify import (
    BatchStreamModel,
    Model,
    ShardWorkerModel,
    check_model,
    run_verification,
)
from repro.verify.mutants import MUTANTS, CancelledSweepMutant


# --------------------------------------------------------------------------- #
# the shared transition tables (production semantics)
# --------------------------------------------------------------------------- #
class TestProtocolTables:
    def test_sweep_lifecycle_and_terminality(self):
        state = "running"
        state = sweep_transition(state, "item_resolved")
        assert state == "running"
        assert sweep_transition(state, "completed") == "done"
        assert sweep_transition(state, "aborted") == "cancelled"
        assert SWEEP_TERMINAL == {"done", "cancelled"}
        for terminal in SWEEP_TERMINAL:
            for event in ("item_resolved", "completed", "aborted"):
                with pytest.raises(ProtocolViolation):
                    sweep_transition(terminal, event)

    def test_worker_lifecycle_and_closed_absorption(self):
        state = worker_transition("down", "spawn")
        state = worker_transition(state, "dispatch")
        state = worker_transition(state, "reply")
        assert state == "idle"
        assert worker_transition("idle", "retire") == "down"
        assert worker_transition("busy", "crash") == "down"
        # closed absorbs shutdown races, nothing else
        assert worker_transition("closed", "crash") == "closed"
        assert worker_transition("closed", "close") == "closed"
        with pytest.raises(ProtocolViolation):
            worker_transition("closed", "dispatch")
        with pytest.raises(ProtocolViolation):
            worker_transition("down", "dispatch")

    def test_window_ledger_audits_bounds(self):
        ledger = WindowLedger(2)
        ledger.acquire()
        ledger.acquire()
        assert ledger.peak == 2
        with pytest.raises(ProtocolViolation):
            ledger.acquire()
        ledger.release()
        ledger.release()
        with pytest.raises(ProtocolViolation):
            ledger.release()
        ledger.assert_drained()
        ledger.acquire()
        with pytest.raises(ProtocolViolation):
            ledger.assert_drained()


# --------------------------------------------------------------------------- #
# checker machinery
# --------------------------------------------------------------------------- #
class _CounterModel(Model):
    """0..limit counter; configurable defects for checker soundness tests."""

    name = "counter"

    def __init__(self, limit=5, bad_state=None, deadlock_at=None):
        self.limit = limit
        self.bad_state = bad_state
        self.deadlock_at = deadlock_at

    def initial(self):
        return 0

    def actions(self, state):
        if state == self.deadlock_at:
            return []
        if state >= self.limit:
            return []
        return [("inc", state + 1)]

    def invariant(self, state):
        if state == self.bad_state:
            return f"reached the planted bad state {state}"
        return None

    def is_terminal(self, state):
        return state >= self.limit


class TestChecker:
    def test_clean_model_explores_exhaustively(self):
        result = check_model(_CounterModel(limit=5))
        assert result.ok and result.complete
        assert result.states == 6 and result.depth == 5

    def test_invariant_violation_comes_with_shortest_trace(self):
        result = check_model(_CounterModel(limit=10, bad_state=3))
        assert not result.ok
        violation = result.violations[0]
        assert violation.kind == "invariant"
        events = [event for event, _ in violation.trace]
        assert events == ["<init>", "inc", "inc", "inc"]

    def test_deadlock_detected(self):
        result = check_model(_CounterModel(limit=10, deadlock_at=4))
        assert [v.kind for v in result.violations] == ["deadlock"]

    def test_bounds_mark_result_incomplete(self):
        result = check_model(_CounterModel(limit=1000), max_states=10)
        assert result.complete is False
        result = check_model(_CounterModel(limit=1000), max_depth=3)
        assert result.complete is False


# --------------------------------------------------------------------------- #
# the production protocol models
# --------------------------------------------------------------------------- #
class TestProtocolModels:
    def test_batch_stream_verifies_clean_and_exhaustively(self):
        result = check_model(BatchStreamModel(items=4, window=2))
        assert result.ok, [v.render() for v in result.violations]
        assert result.complete
        assert result.states > 20

    @pytest.mark.parametrize("items,window", [(1, 1), (3, 3), (5, 2), (6, 3)])
    def test_batch_stream_clean_across_parameters(self, items, window):
        result = check_model(BatchStreamModel(items=items, window=window))
        assert result.ok and result.complete

    def test_shard_worker_verifies_clean_and_exhaustively(self):
        result = check_model(ShardWorkerModel(jobs=3, recycle_after=2))
        assert result.ok, [v.render() for v in result.violations]
        assert result.complete

    @pytest.mark.parametrize("jobs,recycle", [(1, 1), (4, 1), (5, 3), (6, 2)])
    def test_shard_worker_clean_across_parameters(self, jobs, recycle):
        result = check_model(ShardWorkerModel(jobs=jobs, recycle_after=recycle))
        assert result.ok and result.complete

    def test_cancelled_sweep_mutant_is_caught_as_deadlock(self):
        """The PR-5 bug (disconnect before any emit leaves the sweep
        ``running``) must produce a counterexample, proving the checker can
        actually see that bug family."""
        result = check_model(CancelledSweepMutant(items=4, window=2))
        assert not result.ok
        assert any(v.kind == "deadlock" for v in result.violations)
        deadlock = next(v for v in result.violations if v.kind == "deadlock")
        events = [event for event, _ in deadlock.trace]
        assert "disconnect" in events
        assert "abort" not in events
        # the stuck state is a running sweep with the client gone
        assert "sweep=running" in deadlock.trace[-1][1]
        assert "client=gone" in deadlock.trace[-1][1]

    def test_every_registered_mutant_is_caught(self):
        for mutant_factory in MUTANTS:
            result = check_model(mutant_factory())
            assert result.violations, f"{mutant_factory.__name__} slipped through"


# --------------------------------------------------------------------------- #
# run_verification and the CLI
# --------------------------------------------------------------------------- #
class TestRunVerification:
    def test_full_report_is_ok_and_json_able(self):
        report = run_verification()
        assert report["ok"] is True
        assert {entry["model"] for entry in report["models"]} == {
            "batch-stream",
            "shard-worker",
            "delta-lifecycle",
        }
        assert all(entry["complete"] for entry in report["models"])
        assert all(entry["caught"] for entry in report["mutants"])
        json.dumps(report)  # must be serialisable for --json and CI

    def test_hit_bound_fails_the_run(self):
        report = run_verification(["worker"], max_states=5, include_mutants=False)
        assert report["ok"] is False

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            run_verification(["quantum"])

    def test_cli_verify_all_exits_zero(self, capsys):
        assert main(["verify", "--all"]) == 0
        out = capsys.readouterr().out
        assert "batch-stream: ok" in out
        assert "shard-worker: ok" in out
        assert "caught" in out

    def test_cli_verify_json_output(self, capsys):
        assert main(["verify", "--all", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True

    def test_cli_verify_fails_when_bound_hit(self, capsys):
        assert main(["verify", "--protocol", "worker", "--max-states", "5"]) == 1
        assert "bound hit" in capsys.readouterr().out
