"""Tests for the additional graph generators (hypercube, grid, bipartite, caterpillar)."""

from __future__ import annotations

import pytest

from repro.core import is_feasible, selection_index
from repro.portgraph import generators
from repro.views import ViewRefinement


class TestHypercube:
    @pytest.mark.parametrize("dimension", [1, 2, 3, 4])
    def test_shape(self, dimension):
        graph = generators.hypercube_graph(dimension)
        assert graph.num_nodes == 2**dimension
        assert graph.num_edges == dimension * 2 ** (dimension - 1)
        assert set(graph.degree_sequence()) == {dimension}

    def test_port_labels_are_bit_indices(self):
        graph = generators.hypercube_graph(3)
        for v in graph.nodes():
            for bit in range(3):
                assert graph.neighbor(v, bit) == v ^ (1 << bit)

    @pytest.mark.parametrize("dimension", [2, 3, 4])
    def test_vertex_transitive_labeling_is_infeasible(self, dimension):
        graph = generators.hypercube_graph(dimension)
        assert not is_feasible(graph)
        assert ViewRefinement(graph).num_classes(dimension + 2) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.hypercube_graph(0)


class TestGrid:
    @pytest.mark.parametrize("rows,cols", [(1, 2), (2, 2), (2, 3), (3, 4)])
    def test_shape(self, rows, cols):
        graph = generators.grid_graph(rows, cols)
        assert graph.num_nodes == rows * cols
        assert graph.num_edges == rows * (cols - 1) + cols * (rows - 1)

    def test_degrees(self):
        graph = generators.grid_graph(3, 4)
        hist = graph.degree_histogram()
        assert hist[2] == 4  # corners
        assert hist[3] == 2 * (3 - 2) + 2 * (4 - 2)  # borders
        assert hist[4] == (3 - 2) * (4 - 2)  # interior

    def test_feasibility_depends_on_the_grid_shape(self):
        # Two-row grids carry a port-preserving 180° rotation (no fixed node),
        # so they are infeasible; grids with three or more rows and columns
        # break that symmetry at the centre row and become feasible.
        assert not is_feasible(generators.grid_graph(2, 3))
        assert not is_feasible(generators.grid_graph(2, 4))
        for rows, cols in ((3, 3), (3, 4), (4, 4)):
            graph = generators.grid_graph(rows, cols)
            assert is_feasible(graph)
            assert selection_index(graph) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.grid_graph(1, 1)


class TestCompleteBipartite:
    def test_shape(self):
        graph = generators.complete_bipartite_graph(2, 3)
        assert graph.num_nodes == 5
        assert graph.num_edges == 6
        assert sorted(graph.degree_sequence()) == [2, 2, 2, 3, 3]

    def test_star_special_case(self):
        graph = generators.complete_bipartite_graph(1, 4)
        assert graph.degree(0) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.complete_bipartite_graph(0, 3)


class TestCaterpillar:
    def test_shape(self):
        graph = generators.caterpillar_graph(4, 2)
        assert graph.num_nodes == 4 + 8
        assert graph.num_edges == 3 + 8

    def test_legs_zero_gives_a_path(self):
        graph = generators.caterpillar_graph(5, 0)
        assert graph == generators.path_graph(5).relabeled(list(range(5)), name=graph.name)

    def test_leaves_on_one_spine_node_share_views_at_depth_zero_only(self):
        graph = generators.caterpillar_graph(3, 3)
        refinement = ViewRefinement(graph)
        # all 9 leaves look alike at depth 0, but leaves of different spine
        # nodes separate as soon as they see their parents' neighbourhoods
        leaf_class_sizes = sorted(
            len(m) for m in refinement.classes(0).values() if len(m) >= 3
        )
        assert leaf_class_sizes[-1] >= 9

    def test_validation(self):
        with pytest.raises(ValueError):
            generators.caterpillar_graph(1, 2)
