"""Unit tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro.portgraph import GraphBuilder, PortLabelingError, generators


class TestBasicConstruction:
    def test_add_nodes_and_edges(self):
        builder = GraphBuilder()
        a, b, c = builder.add_nodes(3)
        builder.add_edge(a, 0, b, 0)
        builder.add_edge(b, 1, c, 0)
        graph = builder.build()
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_duplicate_port_rejected(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 0, 1, 0)
        with pytest.raises(PortLabelingError):
            builder.add_edge(0, 0, 2, 0)

    def test_multi_edge_rejected(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 0, 1, 0)
        with pytest.raises(PortLabelingError):
            builder.add_edge(0, 1, 1, 1)

    def test_build_requires_contiguous_ports(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 3, 1, 0)
        with pytest.raises(PortLabelingError):
            builder.build()
        # intermediate validation may relax contiguity, the frozen graph may not
        builder.validate(require_contiguous_ports=False)
        builder.compact_ports()
        assert builder.build().degree(0) == 1

    def test_compact_ports(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 5, 1, 0)
        builder.add_edge(0, 7, 2, 0)
        builder.compact_ports()
        graph = builder.build()
        assert sorted(graph.ports(0)) == [0, 1]


class TestPaths:
    def test_add_path_between_existing_nodes(self):
        builder = GraphBuilder(2)
        internal = builder.add_path((0, 1), 3, port_at_first=0, port_at_last=0)
        assert len(internal) == 2
        graph = builder.build()
        assert graph.num_nodes == 4
        assert graph.num_edges == 3
        assert graph.degree(internal[0]) == 2

    def test_add_path_single_edge(self):
        builder = GraphBuilder(2)
        internal = builder.add_path((0, 1), 1, port_at_first=0, port_at_last=0)
        assert internal == []
        assert builder.has_edge(0, 1)

    def test_add_pendant_path(self):
        builder = GraphBuilder(1)
        nodes = builder.add_pendant_path(0, 3, port_at_anchor=0, toward_anchor_port=1, away_port=0)
        assert len(nodes) == 3
        # last node has only the toward-anchor port, which must be relabeled to 0 to build;
        # callers using toward_anchor_port=1 get a degree-1 node with port 1.
        builder.relabel_port(nodes[-1], 1, 0)
        graph = builder.build()
        assert graph.degree(nodes[-1]) == 1


class TestPortManipulation:
    def test_swap_ports(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 0, 1, 0)
        builder.add_edge(0, 1, 2, 0)
        builder.swap_ports(0, 0, 1)
        assert builder.endpoint(0, 0)[0] == 2
        assert builder.endpoint(0, 1)[0] == 1
        # reciprocity preserved
        assert builder.endpoint(2, 0) == (0, 0)
        assert builder.endpoint(1, 0) == (0, 1)

    def test_swap_missing_port_rejected(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 0, 1, 0)
        with pytest.raises(PortLabelingError):
            builder.swap_ports(0, 0, 5)

    def test_relabel_port(self):
        builder = GraphBuilder(2)
        builder.add_edge(0, 0, 1, 0)
        builder.relabel_port(0, 0, 4)
        assert builder.endpoint(0, 4) == (1, 0)
        assert builder.endpoint(1, 0) == (0, 4)

    def test_shift_ports(self):
        builder = GraphBuilder(3)
        builder.add_edge(0, 0, 1, 0)
        builder.add_edge(0, 1, 2, 0)
        builder.shift_ports(0, 10)
        assert sorted(builder.ports(0)) == [10, 11]
        assert builder.endpoint(1, 0) == (0, 10)


class TestComposition:
    def test_add_graph_disjoint_union(self):
        base = generators.path_graph(3)
        builder = GraphBuilder()
        off_a = builder.add_graph(base)
        off_b = builder.add_graph(base)
        assert off_a == 0 and off_b == 3
        builder.add_edge(2, 1, 3 + 2, 1)
        graph = builder.build()
        assert graph.num_nodes == 6
        assert graph.num_edges == 5

    def test_merge_nodes(self):
        builder = GraphBuilder(4)
        builder.add_edge(0, 0, 1, 0)
        builder.add_edge(2, 0, 3, 0)
        # merge node 2 into node 0: node 3's edge reattaches to node 0 on port 0 of node 2?
        # node 2 uses port 0, node 0 already uses port 0 -> clash expected
        with pytest.raises(PortLabelingError):
            builder.merge_nodes(0, 2)

    def test_merge_nodes_success(self):
        builder = GraphBuilder(4)
        builder.add_edge(0, 0, 1, 0)
        builder.add_edge(2, 1, 3, 0)
        builder.merge_nodes(0, 2)
        graph = builder.build()
        assert graph.num_nodes == 3
        assert graph.degree(0) == 2
        # node 3 shifted down to handle 2
        assert graph.has_edge(0, 2)

    def test_from_graph(self):
        base = generators.star_graph(3)
        builder = GraphBuilder.from_graph(base)
        assert builder.num_nodes == base.num_nodes
        assert builder.num_edges == base.num_edges
        assert builder.build() == base
