"""End-to-end tracing through the service: ``GET /trace/<id>`` trees that
span parent and shard processes, thread-vs-process span-schema parity, the
slow-request log and the linted ``/metrics`` exposition.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest
from test_service import _RunningServer, make_service
from test_service_batch import _post_stream

from repro.obs import SPAN_SCHEMA_KEYS, default_recorder
from repro.service import ElectionService
from repro.service.metrics import validate_exposition
from repro.service.server import ElectionServer

#: Stages every traced batch item must surface, regardless of backend.
_COMMON_STAGES = {
    "http_request",
    "parse",
    "batch_prepare",
    "item",
    "window_acquire",
    "compute",
    "compute_election",
    "evaluate_graph",
}

_ONE_ITEM_BATCH = {
    "items": [{"spec": {"kind": "cycle", "params": {"n": 5}}, "tasks": ["S"]}]
}


@pytest.fixture(autouse=True)
def _clean_recorder(isolated_refinement_cache):
    default_recorder.clear()
    yield
    default_recorder.clear()


def _flatten(nodes, acc=None):
    acc = [] if acc is None else acc
    for node in nodes:
        acc.append(node)
        _flatten(node["children"], acc)
    return acc


def _trace_tree(running, trace_id):
    # spans of a stream are recorded as its stages finish; the root span
    # lands when the connection closes, just before this follow-up request
    return running.get(f"/trace/{trace_id}")


def _run_batch_and_fetch_trace(backend):
    with _RunningServer(make_service(backend=backend, workers=2)) as running:
        lines = _post_stream(running, _ONE_ITEM_BATCH)
        trace_id = lines[0]["trace_id"]
        assert {line["trace_id"] for line in lines} == {trace_id}
        tree = _trace_tree(running, trace_id)
    return trace_id, tree


# --------------------------------------------------------------------------- #
# the acceptance path: one batch item, one resolvable span tree
# --------------------------------------------------------------------------- #
def test_thread_batch_trace_resolves_with_named_stages():
    trace_id, tree = _run_batch_and_fetch_trace("thread")
    spans = _flatten(tree["spans"])
    assert tree["queried"] == trace_id
    assert tree["span_count"] == len(spans) >= 6
    assert _COMMON_STAGES <= {span["name"] for span in spans}
    assert all(span["trace_id"] == trace_id for span in spans)


def test_process_batch_trace_spans_both_processes():
    trace_id, tree = _run_batch_and_fetch_trace("process")
    spans = _flatten(tree["spans"])
    names = {span["name"] for span in spans}
    assert len(names & _COMMON_STAGES) >= 6
    assert "dispatch" in names, "parent-side shard stages must be in the tree"
    shard_stages = {"compute_election", "graph_build", "evaluate_graph"}
    shard_pids = {span["pid"] for span in spans if span["name"] in shard_stages}
    parent_pids = {span["pid"] for span in spans if span["name"] == "http_request"}
    assert shard_pids and parent_pids and shard_pids.isdisjoint(parent_pids), (
        "one trace must show parent AND shard-process stages",
        shard_pids,
        parent_pids,
    )
    # the shard's compute subtree hangs off the parent's trace, not orphaned
    compute = next(span for span in spans if span["name"] == "compute_election")
    assert compute["parent_id"] is not None


def test_thread_and_process_spans_share_one_schema():
    observed = {}
    for backend in ("thread", "process"):
        default_recorder.clear()
        _run_batch_and_fetch_trace(backend)
        # inspect the raw recorder: every span, both backends, same contract
        trace_ids = []
        with default_recorder._lock:
            trace_ids = list(default_recorder._traces)
        spans = [s for tid in trace_ids for s in default_recorder.trace(tid)]
        assert spans
        for span in spans:
            assert tuple(span.keys()) == SPAN_SCHEMA_KEYS, span
        observed[backend] = {span["name"] for span in spans}
    assert _COMMON_STAGES <= observed["thread"]
    assert _COMMON_STAGES <= observed["process"]
    assert observed["process"] - observed["thread"] <= {"dispatch", "queue_wait"}


# --------------------------------------------------------------------------- #
# /trace lookup hardening
# --------------------------------------------------------------------------- #
def test_trace_lookup_rejects_malformed_and_unknown_ids():
    with _RunningServer(make_service(workers=1)) as running:
        for bad, expected in (("/trace/NOT%20VALID!", "malformed"),
                              ("/trace/ffffff-00ff42", "unknown")):
            try:
                running.get(bad)
                raise AssertionError(f"expected 404 for {bad}")
            except urllib.error.HTTPError as error:
                assert error.code == 404
                body = json.loads(error.read())
                assert expected in body["error"]
                assert "trace_id" in body, "errors carry trace ids too"


# --------------------------------------------------------------------------- #
# slow-request log and the /stats slowest table
# --------------------------------------------------------------------------- #
def _serve_with_slow_log(threshold):
    logged = []
    service = make_service(workers=1)
    running = _RunningServer(service)
    running.server = ElectionServer(
        service, port=0, slow_request_s=threshold, slow_log=logged.append
    )
    return running, logged


def test_slow_request_log_fires_above_threshold_only():
    running, logged = _serve_with_slow_log(threshold=0.0)
    with running:
        body = running.post("/election", {"spec": {"kind": "cycle", "params": {"n": 4}}})
    assert logged, "a 0s threshold logs every request"
    assert any(body["trace_id"] in line for line in logged)
    assert all("duration_ms=" in line for line in logged)

    running, logged = _serve_with_slow_log(threshold=3600.0)
    with running:
        running.get("/healthz")
    assert logged == [], "an hour-long threshold logs nothing in a unit test"


def test_stats_slowest_table_ranks_by_duration():
    with _RunningServer(make_service(workers=1)) as running:
        running.post("/election", {"spec": {"kind": "cycle", "params": {"n": 4}}})
        running.get("/healthz")
        stats = running.get("/stats")
    traces = stats["traces"]
    assert {"issued", "recent", "spans", "dropped", "slowest"} <= set(traces)
    slowest = traces["slowest"]
    assert slowest, "requests were served, the table cannot be empty"
    durations = [row["duration_ms"] for row in slowest]
    assert durations == sorted(durations, reverse=True)
    assert {"trace_id", "path", "status", "duration_ms"} == set(slowest[0])


# --------------------------------------------------------------------------- #
# /metrics: linted exposition + tracing families (both backends via matrix)
# --------------------------------------------------------------------------- #
def test_metrics_scrape_passes_exposition_lint_with_tracing_families():
    with _RunningServer(make_service(workers=2)) as running:
        _post_stream(running, _ONE_ITEM_BATCH)
        scrape = urllib.request.urlopen(f"{running.base}/metrics").read().decode()
        families = validate_exposition(scrape)
        for name in (
            "repro_trace_dropped_total",
            "repro_trace_spans",
            "repro_shard_busy_seconds_total",
            "repro_shard_tasks_total",
            "repro_shard_queue_depth",
            "repro_search_events",
            "repro_store_events",
        ):
            assert name in families, name
        assert families["repro_trace_dropped_total"]["type"] == "counter"
        spans_held = families["repro_trace_spans"]["samples"][("repro_trace_spans", ())]
        assert spans_held > 0, "the batch just traced must hold spans"
        if running.service.backend == "process":
            busy = families["repro_shard_busy_seconds_total"]["samples"]
            assert sum(busy.values()) > 0, "a shard computed; busy seconds follow"


def test_search_counters_aggregate_in_stats_and_metrics():
    batch = {
        "items": [
            {"spec": {"kind": "cycle", "params": {"n": 5}}, "tasks": ["PPE"]},
            {"spec": {"kind": "star", "params": {"leaves": 4}}, "tasks": ["PPE"]},
        ]
    }
    with _RunningServer(make_service(workers=2)) as running:
        _post_stream(running, batch)
        scrape = urllib.request.urlopen(f"{running.base}/metrics").read().decode()
        families = validate_exposition(scrape)
        searches = families["repro_search_events"]["samples"][
            ("repro_search_events", (("event", "searches"),))
        ]
        assert searches > 0, "PPE items ran joint searches; the scrape must see them"
