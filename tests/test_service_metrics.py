"""Observability surfaces: the metrics registry, ``GET /metrics``, trace ids
and the hardened ``GET /sweeps/<id>`` lookup.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest
from test_service import _RunningServer, make_service
from test_service_batch import _post_stream

from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    validate_exposition,
)


@pytest.fixture(autouse=True)
def _detached_process_cache(isolated_refinement_cache):
    yield


# --------------------------------------------------------------------------- #
# registry unit tests
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_counter_renders_prometheus_text(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "Things.", ("kind",))
        counter.inc(kind="a")
        counter.inc(2, kind="b")
        text = registry.render()
        assert "# HELP repro_things_total Things." in text
        assert "# TYPE repro_things_total counter" in text
        assert 'repro_things_total{kind="a"} 1' in text
        assert 'repro_things_total{kind="b"} 2' in text

    def test_counter_rejects_negative_and_wrong_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c", ("x",))
        with pytest.raises(ValueError):
            counter.inc(-1, x="a")
        with pytest.raises(ValueError):
            counter.inc(y="a")

    def test_gauge_set_and_callback_forms(self):
        registry = MetricsRegistry()
        plain = registry.gauge("g_plain", "plain")
        plain.set(3.5)
        live = {"depth": 7}
        registry.gauge("g_live", "live", callback=lambda: live["depth"])
        registry.gauge(
            "g_labeled",
            "labeled",
            ("event",),
            callback=lambda: {("a",): 1, ("b",): 2},
        )
        text = registry.render()
        assert "g_plain 3.5" in text
        assert "g_live 7" in text
        assert 'g_labeled{event="a"} 1' in text
        live["depth"] = 9
        assert "g_live 9" in registry.render(), "callback gauges read at scrape time"

    def test_callback_gauge_cannot_be_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "g", callback=lambda: 1)
        with pytest.raises(ValueError):
            gauge.set(2)

    def test_histogram_cumulative_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        text = registry.render()
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 3' in text, "buckets must be cumulative"
        assert 'h_seconds_bucket{le="+Inf"} 4' in text
        assert "h_seconds_count 4" in text
        assert "h_seconds_sum 6.05" in text

    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dup_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("dup_total", "y")

    def test_rendering_is_deterministic(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "t", ("k",))
        for key in ("b", "a", "c"):
            counter.inc(k=key)
        assert registry.render() == registry.render()
        lines = registry.render().splitlines()
        samples = [line for line in lines if line.startswith("t_total{")]
        assert samples == sorted(samples)

    def test_callback_counter_reads_at_scrape_time(self):
        registry = MetricsRegistry()
        live = {"dropped": 0}
        counter = registry.counter("d_total", "d", callback=lambda: live["dropped"])
        assert "d_total 0" in registry.render()
        live["dropped"] = 4
        assert "d_total 4" in registry.render()
        with pytest.raises(ValueError):
            counter.inc()


# --------------------------------------------------------------------------- #
# the exposition lint (parse_exposition / validate_exposition)
# --------------------------------------------------------------------------- #
class TestExpositionLint:
    def test_parses_every_instrument_kind(self):
        registry = MetricsRegistry()
        registry.counter("l_total", "c", ("k",)).inc(k="a")
        registry.gauge("l_gauge", "g").set(2.5)
        registry.histogram("l_seconds", "h", buckets=(0.1,)).observe(0.05)
        families = validate_exposition(registry.render())
        assert families["l_total"]["type"] == "counter"
        assert families["l_total"]["samples"][("l_total", (("k", "a"),))] == 1.0
        assert families["l_gauge"]["samples"][("l_gauge", ())] == 2.5
        assert families["l_seconds"]["type"] == "histogram"

    def test_label_escapes_round_trip(self):
        registry = MetricsRegistry()
        tricky = 'quote " slash \\ newline \n end'
        registry.counter("e_total", "e", ("p",)).inc(p=tricky)
        families = parse_exposition(registry.render())
        ((_, labels),) = families["e_total"]["samples"]
        assert dict(labels)["p"] == tricky

    @pytest.mark.parametrize(
        "text, complaint",
        [
            ("# TYPE x counter\nx 1\n", "TYPE without preceding HELP"),
            ("# HELP x h\nx 1\n", "no TYPE"),
            ("# HELP x h\n# TYPE x widget\n", "unknown metric kind"),
            ("# HELP x h\n# TYPE x counter\nx 1\nx 1\n", "duplicate series"),
            ("# HELP x h\n# TYPE x counter\nx nope\n", "unparseable sample value"),
            ("# HELP x h\n# TYPE x counter\nx{k=\"v} 1\n", "unterminated"),
            ("# HELP x h\n# TYPE x counter\nx{k=\"\\q\"} 1\n", "bad escape"),
            ("# HELP x h\n# TYPE x counter\nx_bucket{le=\"1\"} 1\n", "declaration"),
            ("# HELP 0bad h\n# TYPE 0bad counter\n0bad 1\n", "bad metric name"),
        ],
    )
    def test_rejects_grammar_violations(self, text, complaint):
        with pytest.raises(ValueError, match=complaint.split()[0]):
            parse_exposition(text)

    def test_validate_rejects_noncumulative_histogram(self):
        text = (
            "# HELP h_s h\n# TYPE h_s histogram\n"
            'h_s_bucket{le="0.1"} 5\nh_s_bucket{le="+Inf"} 3\n'
            "h_s_sum 1\nh_s_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            validate_exposition(text)

    def test_validate_rejects_missing_inf_bucket_and_count_mismatch(self):
        missing_inf = (
            "# HELP h_s h\n# TYPE h_s histogram\n"
            'h_s_bucket{le="0.1"} 1\nh_s_sum 1\nh_s_count 1\n'
        )
        with pytest.raises(ValueError, match="\\+Inf bucket"):
            validate_exposition(missing_inf)
        mismatch = (
            "# HELP h_s h\n# TYPE h_s histogram\n"
            'h_s_bucket{le="+Inf"} 2\nh_s_sum 1\nh_s_count 3\n'
        )
        with pytest.raises(ValueError, match="!= _count"):
            validate_exposition(mismatch)

    def test_validate_rejects_negative_counter(self):
        with pytest.raises(ValueError, match="negative counter"):
            validate_exposition("# HELP x h\n# TYPE x counter\nx -1\n")


# --------------------------------------------------------------------------- #
# GET /metrics end to end
# --------------------------------------------------------------------------- #
def _scrape(running) -> str:
    with urllib.request.urlopen(f"{running.base}/metrics") as response:
        assert response.headers["Content-Type"].startswith("text/plain")
        return response.read().decode("utf-8")


def _sample_value(text: str, prefix: str) -> float:
    for line in text.splitlines():
        if line.startswith(prefix) and not line.startswith("#"):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"no sample {prefix!r} in scrape")


def test_metrics_endpoint_exposes_every_layer():
    with _RunningServer(make_service(workers=2)) as running:
        running.post("/election", {"spec": {"kind": "star", "params": {"leaves": 4}}})
        _post_stream(
            running, {"sweep": {"corpus": "mixed", "count": 3, "seed": 5}}
        )
        text = _scrape(running)
        again = _scrape(running)
    for family, kind in [
        ("repro_requests_total", "counter"),
        ("repro_request_seconds", "histogram"),
        ("repro_service_events", "gauge"),
        ("repro_service_in_flight", "gauge"),
        ("repro_backend_queue_depth", "gauge"),
        ("repro_batch_events", "gauge"),
        ("repro_window_in_flight", "gauge"),
        ("repro_shard_events", "gauge"),
        ("repro_traces_issued", "gauge"),
    ]:
        assert f"# TYPE {family} {kind}" in text
    assert (
        _sample_value(text, 'repro_requests_total{method="POST",path="/election"')
        == 1
    )
    assert _sample_value(text, 'repro_service_events{event="queries"}') == 4
    assert _sample_value(text, 'repro_batch_events{event="batches"}') == 1
    assert _sample_value(text, 'repro_batch_events{event="batch_items"}') == 3
    assert _sample_value(text, "repro_window_in_flight") == 0
    assert (
        _sample_value(text, 'repro_request_seconds_count{path="/election"}') == 1
    )
    # scrapes count themselves, so the second scrape sees the first
    assert (
        _sample_value(again, 'repro_requests_total{method="GET",path="/metrics"')
        >= 1
    )


def test_metrics_normalises_sweep_paths_to_bounded_cardinality():
    with _RunningServer(make_service(workers=1)) as running:
        lines = _post_stream(running, {"sweep": {"corpus": "mixed", "count": 2, "seed": 1}})
        running.get(f"/sweeps/{lines[0]['sweep']}")
        try:
            running.get("/sweeps/00112233445566778899aabb")
        except urllib.error.HTTPError as error:
            assert error.code == 404
        text = _scrape(running)
    assert 'path="/sweeps/{id}"' in text
    assert lines[0]["sweep"] not in text, "raw sweep ids must never label metrics"


def test_metrics_rejects_non_get():
    with _RunningServer(make_service(workers=1)) as running:
        try:
            running.post("/metrics", {})
            raise AssertionError("expected 405")
        except urllib.error.HTTPError as error:
            assert error.code == 405


# --------------------------------------------------------------------------- #
# trace ids
# --------------------------------------------------------------------------- #
def test_trace_ids_are_unique_and_echoed_in_stats():
    with _RunningServer(make_service(workers=1)) as running:
        traces = [
            running.post(
                "/election", {"spec": {"kind": "star", "params": {"leaves": 3}}}
            )["trace_id"]
            for _ in range(3)
        ]
        stream = _post_stream(
            running, {"sweep": {"corpus": "mixed", "count": 2, "seed": 3}}
        )
        stats = running.get("/stats")
    assert len(set(traces)) == 3, "every request gets its own trace id"
    stream_traces = {line["trace_id"] for line in stream}
    assert len(stream_traces) == 1, "one stream, one trace id on every line"
    ring = stats["traces"]
    assert ring["issued"] >= 5
    recent = {entry["trace_id"] for entry in ring["recent"]}
    assert set(traces) <= recent
    assert stream_traces <= recent
    by_trace = {entry["trace_id"]: entry for entry in ring["recent"]}
    assert by_trace[traces[0]]["path"] == "/election"
    assert by_trace[traces[0]]["status"] == 200
    assert by_trace[next(iter(stream_traces))]["path"] == "/elections"


def test_error_responses_carry_the_trace_id():
    with _RunningServer(make_service(workers=1)) as running:
        code, body = running.post_expecting_error("/election", {"spec": {"kind": "no"}})
        stats = running.get("/stats")
    assert code == 400
    assert body["trace_id"] in {entry["trace_id"] for entry in stats["traces"]["recent"]}
    assert any(
        entry["trace_id"] == body["trace_id"] and entry["status"] == 400
        for entry in stats["traces"]["recent"]
    )


# --------------------------------------------------------------------------- #
# GET /sweeps/<id> hardening (regression: malformed ids were 500s)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "sweep_id",
    [
        "no-such-sweep!",
        "abc.json",
        "ffffffffffffffffffffffff.json%2Fx",
        "..%2F..%2Fmanifest",
        "%00abc",
        "a" * 65,
        "UPPERCASE",
    ],
)
def test_malformed_sweep_ids_are_404_json_not_500(tmp_path, sweep_id):
    from repro.store import ArtifactStore

    with _RunningServer(
        make_service(store=ArtifactStore(str(tmp_path)), workers=1)
    ) as running:
        # a persisted sweep makes the store path live, the worst case for
        # ids that turn into hostile filesystem paths
        _post_stream(running, {"sweep": {"corpus": "mixed", "count": 2, "seed": 9}})
        try:
            running.get(f"/sweeps/{sweep_id}")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404
            body = json.loads(error.read())
            assert "sweep id" in body["error"] or "unknown sweep" in body["error"]
            assert "trace_id" in body
        # the server survived and still answers
        assert running.get("/healthz")["status"] == "ok"


def test_unknown_wellformed_sweep_id_is_404():
    with _RunningServer(make_service(workers=1)) as running:
        try:
            running.get("/sweeps/" + "d" * 24)
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404
            assert "unknown sweep" in json.loads(error.read())["error"]
