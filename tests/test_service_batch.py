"""Integration tests for the batch/streaming endpoint (``POST /elections``).

Error paths, backpressure and consistency: malformed NDJSON items fail per
item while the stream continues; envelope problems and oversized sweeps are
clean 400s; a mid-stream client disconnect cancels the sweep without hurting
the server; coalescing holds across batch items and single queries with
byte-identical results; the in-flight window genuinely bounds concurrency.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest
from test_service import _RunningServer, make_service

from repro.runner import refinement_cache
from repro.service import deterministic_response
from repro.service.batch import MAX_BATCH_ITEMS, expand_sweep
from repro.store import ArtifactStore


@pytest.fixture(autouse=True)
def _detached_process_cache(isolated_refinement_cache):
    yield


def _post_stream(running, payload) -> list:
    """POST a batch and return the parsed NDJSON lines."""
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(f"{running.base}/elections", data=body)
    with urllib.request.urlopen(request) as response:
        assert response.headers["Content-Type"] == "application/x-ndjson"
        return [json.loads(line) for line in response.read().splitlines()]


def _post_expecting_status(running, payload, status: int) -> dict:
    try:
        _post_stream(running, payload)
    except urllib.error.HTTPError as error:
        assert error.code == status
        return json.loads(error.read())
    raise AssertionError(f"expected HTTP {status}")


# --------------------------------------------------------------------------- #
# consistency
# --------------------------------------------------------------------------- #
def test_corpus_sweep_items_byte_identical_to_sequential_singles():
    sweep = {"corpus": "mixed", "count": 11, "seed": 13}
    with _RunningServer(make_service(workers=4)) as running:
        lines = _post_stream(running, {"sweep": sweep, "window": 4})
        header, items, trailer = lines[0], lines[1:-1], lines[-1]
        assert header["items"] == 11
        assert trailer == {
            "sweep": header["sweep"],
            "status": "done",
            "ok": 11,
            "errors": 0,
            "trace_id": header["trace_id"],
        }
        # one request, one trace id, stamped on every line of the stream
        assert {line["trace_id"] for line in lines} == {header["trace_id"]}
        assert [line["index"] for line in items] == list(range(11))
        for payload, line in zip(expand_sweep(sweep), items):
            single = deterministic_response(running.post("/election", payload))
            streamed = {
                k: v for k, v in line.items() if k not in ("index", "status", "trace_id")
            }
            assert json.dumps(streamed, sort_keys=True) == json.dumps(single, sort_keys=True)


def test_duplicate_inflight_batch_items_coalesce_with_identical_results():
    item = {"spec": {"kind": "asymmetric-cycle", "params": {"n": 9}}}
    with _RunningServer(make_service(workers=4, compute_delay=0.25)) as running:
        lines = _post_stream(running, {"items": [item, item, item], "window": 3})
        stats = running.get("/stats")
    results = [json.dumps(line, sort_keys=True) for line in lines[1:-1]]
    assert len(set(r.replace(f'"index": {i}', '"index": 0') for i, r in enumerate(results))) == 1
    assert stats["service"]["computed"] == 1
    assert stats["service"]["coalesced"] == 2
    assert stats["batch"]["batches"] == 1 and stats["batch"]["batch_items"] == 3


# --------------------------------------------------------------------------- #
# error paths
# --------------------------------------------------------------------------- #
def test_malformed_ndjson_items_fail_per_item_not_per_request():
    body = (
        b'{"spec": {"kind": "star", "params": {"leaves": 3}}}\n'
        b"{definitely not json\n"
        b"[1, 2, 3]\n"
        b'{"spec": {"kind": "erdos-renyi", "params": {"n": 6, "seed": 1}}}\n'
    )
    with _RunningServer(make_service(workers=2)) as running:
        lines = _post_stream(running, body)
    statuses = [line["status"] for line in lines[1:-1]]
    assert statuses == ["ok", "error", "error", "ok"]
    assert "malformed NDJSON line" in lines[2]["error"]
    assert "must be a JSON object" in lines[3]["error"]
    assert lines[-1] == {
        "sweep": lines[0]["sweep"],
        "status": "done",
        "ok": 2,
        "errors": 2,
        "trace_id": lines[0]["trace_id"],
    }


def test_single_line_ndjson_body_is_a_one_item_batch():
    # one NDJSON line parses as a plain JSON object; the contract says it is
    # still a batch of one item, not a malformed envelope
    body = b'{"spec": {"kind": "star", "params": {"leaves": 3}}}\n'
    with _RunningServer(make_service(workers=1)) as running:
        lines = _post_stream(running, body)
    assert lines[0]["items"] == 1
    assert lines[1]["status"] == "ok" and lines[1]["graph"] == "star(leaves=3)"
    assert lines[-1] == {
        "sweep": lines[0]["sweep"],
        "status": "done",
        "ok": 1,
        "errors": 0,
        "trace_id": lines[0]["trace_id"],
    }


def test_item_level_query_errors_do_not_abort_the_stream():
    items = [
        {"spec": {"kind": "no-such-kind"}},
        {"spec": {"kind": "star", "params": {"leaves": 3}}, "tasks": ["X"]},
        {"graph": {"num_nodes": 2, "edges": [[0, 0, 1, 5]]}},
        {"spec": {"kind": "star", "params": {"leaves": 4}}},
    ]
    with _RunningServer(make_service(workers=2)) as running:
        lines = _post_stream(running, {"items": items})
    assert [line["status"] for line in lines[1:-1]] == ["error", "error", "error", "ok"]
    assert "unknown graph kind" in lines[1]["error"]
    assert "unknown task" in lines[2]["error"]
    assert lines[4]["graph"] == "star(leaves=4)"


def test_envelope_errors_are_400s():
    with _RunningServer(make_service(workers=1)) as running:
        for payload, fragment in [
            ({"items": [], "sweep": {"corpus": "mixed"}}, "exactly one"),
            ({}, "exactly one"),
            ({"items": "nope"}, "must be a list"),
            ({"items": [{"spec": {"kind": "star"}}], "window": 0}, "window"),
            ({"sweep": {"corpus": "no-such-corpus", "count": 1}}, "unknown corpus"),
            ({"sweep": {"grid": [{"kind": "torus", "sizes": [5]}]}}, "not a single-size"),
            ({"sweep": {"grid": [{"kind": "no-such", "sizes": [5]}]}}, "unknown graph kind"),
            (b"", "empty batch"),
            (b"\n\n", "empty batch"),
        ]:
            assert fragment in _post_expecting_status(running, payload, 400)["error"]
        # wrong method on the batch path
        try:
            running.get("/elections")
            raise AssertionError("expected 405")
        except urllib.error.HTTPError as error:
            assert error.code == 405


def test_oversized_sweep_rejected_with_clear_error():
    with _RunningServer(make_service(workers=1)) as running:
        body = _post_expecting_status(
            running,
            {"sweep": {"corpus": "mixed", "count": MAX_BATCH_ITEMS + 1}},
            400,
        )
        assert "oversized sweep" in body["error"]
        items = [{"spec": {"kind": "star", "params": {"leaves": 3}}}] * (MAX_BATCH_ITEMS + 1)
        assert "oversized sweep" in _post_expecting_status(running, {"items": items}, 400)["error"]


# --------------------------------------------------------------------------- #
# backpressure and disconnect
# --------------------------------------------------------------------------- #
def test_window_bounds_in_flight_computations():
    # distinct sizes (no coalescing), plenty of workers: only the window
    # may limit concurrency
    items = [
        {"spec": {"kind": "asymmetric-cycle", "params": {"n": n}}} for n in range(5, 17)
    ]
    with _RunningServer(make_service(workers=8, compute_delay=0.05)) as running:
        lines = _post_stream(running, {"items": items, "window": 2})
        status = running.get(f"/sweeps/{lines[0]['sweep']}")
    assert status["state"] == "done"
    assert status["completed"] == len(items)
    assert status["max_in_flight"] == 2, "window must cap concurrent computations"


def test_mid_stream_disconnect_cancels_the_sweep_and_server_survives():
    items = [
        {"spec": {"kind": "asymmetric-cycle", "params": {"n": n}}} for n in range(5, 25)
    ]
    body = json.dumps({"items": items, "window": 2}).encode("utf-8")
    with _RunningServer(make_service(workers=2, compute_delay=0.1)) as running:
        host, port = "127.0.0.1", running.server.port
        with socket.create_connection((host, port), timeout=10) as raw:
            raw.sendall(
                (
                    f"POST /elections HTTP/1.1\r\nHost: {host}\r\n"
                    f"Content-Length: {len(body)}\r\n\r\n"
                ).encode("ascii")
                + body
            )
            reader = raw.makefile("rb")
            reader.readline()  # status line
            while reader.readline() not in (b"\r\n", b""):
                pass  # headers
            header = json.loads(reader.readline())
            sweep_id = header["sweep"]
            reader.readline()  # one item, then hang up mid-stream
            reader.close()  # makefile holds the fd; close it so the socket really dies
        deadline = time.time() + 10
        state = None
        while time.time() < deadline:
            state = running.get(f"/sweeps/{sweep_id}")["state"]
            if state == "cancelled":
                break
            time.sleep(0.1)
        assert state == "cancelled"
        # the server is still fully alive for other clients
        assert running.get("/healthz")["status"] == "ok"
        follow_up = _post_stream(
            running, {"items": [{"spec": {"kind": "star", "params": {"leaves": 3}}}]}
        )
        assert follow_up[-1]["status"] == "done"


# --------------------------------------------------------------------------- #
# sweeps registry
# --------------------------------------------------------------------------- #
def test_sweep_status_listing_and_unknown_id():
    with _RunningServer(make_service(workers=1)) as running:
        lines = _post_stream(running, {"sweep": {"corpus": "mixed", "count": 3, "seed": 1}})
        sweep_id = lines[0]["sweep"]
        assert sweep_id in running.get("/sweeps")["sweeps"]
        status = running.get(f"/sweeps/{sweep_id}")
        assert status["state"] == "done" and status["items"] == "+++"
        try:
            running.get("/sweeps/ffffffffffffffffffffffff")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404


def test_sweep_status_persists_across_service_restart(tmp_path):
    payload = {"sweep": {"corpus": "mixed", "count": 4, "seed": 2}}
    with _RunningServer(make_service(store=ArtifactStore(str(tmp_path)), workers=1)) as running:
        sweep_id = _post_stream(running, payload)[0]["sweep"]
    refinement_cache.clear()
    with _RunningServer(make_service(store=ArtifactStore(str(tmp_path)), workers=1)) as running:
        status = running.get(f"/sweeps/{sweep_id}")
        assert status["state"] == "done" and status["total"] == 4
        assert sweep_id in running.get("/sweeps")["sweeps"]
        # resume: the same batch replays store-warm, without a refinement pass
        replay = _post_stream(running, payload)
        assert replay[-1]["ok"] == 4
        stats = running.get("/stats")
    assert stats["cache"]["refinement_passes"] == 0
    assert stats["cache"]["store_hits"] == 4
