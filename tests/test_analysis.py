"""Tests for the analysis helpers: lemma checkers, separation tables, statistics."""

from __future__ import annotations

import pytest

from repro.analysis import (
    corresponding_views_equal,
    every_node_has_twin_at_depth,
    format_table,
    only_unique_view_nodes,
    pe_lower_bound_rows,
    ppe_cppe_lower_bound_rows,
    selection_advice_table,
    selection_lower_bound_rows,
    summarize_graph,
    view_class_profile,
)
from repro.advice import pigeonhole_forces_collision
from repro.portgraph import generators


class TestIndistinguishabilityHelpers:
    def test_only_unique_view_nodes(self):
        graph = generators.asymmetric_cycle(6)
        assert set(only_unique_view_nodes(graph, 1)) == {0, 1, 5}

    def test_every_node_has_twin(self):
        assert every_node_has_twin_at_depth(generators.cycle_graph(6), 3)
        assert not every_node_has_twin_at_depth(generators.star_graph(3), 0)

    def test_corresponding_views_equal(self):
        first = generators.path_graph(6)
        second = generators.path_graph(8)
        assert corresponding_views_equal(first, second, [(0, 0), (1, 1)], 2)
        assert not corresponding_views_equal(first, second, [(0, 4)], 2)


class TestSeparationTables:
    def test_selection_advice_table_rows(self):
        graphs = [
            generators.asymmetric_cycle(6),
            generators.star_graph(4),
            generators.path_graph(5),
            generators.cycle_graph(5),  # infeasible: skipped
        ]
        rows = selection_advice_table(graphs)
        assert len(rows) == 3
        assert all(row.within_bound for row in rows)

    def test_selection_lower_bound_rows(self):
        rows = selection_lower_bound_rows([(5, 1), (6, 2), (8, 3)])
        assert len(rows) == 3
        for row in rows:
            assert row.class_size > 1
            assert row.pigeonhole_bits >= 1
            # the paper's insufficient budget must indeed force a collision
            assert row.collision_at_paper_budget is True

    def test_pe_lower_bound_rows_show_exponential_separation(self):
        rows = pe_lower_bound_rows([(4, 1), (6, 1), (8, 1)])
        for row in rows:
            assert row.collision_at_paper_budget is True
        # The separation is asymptotic ("for sufficiently large Δ"): from Δ = 6
        # on, the advice forced by the class size dwarfs the Selection budget,
        # and the gap widens with Δ and k.
        for row in rows[1:]:
            assert row.pigeonhole_bits > row.selection_budget_bits
        gaps = [row.pigeonhole_bits - row.selection_budget_bits for row in rows]
        assert gaps == sorted(gaps)

    def test_ppe_cppe_lower_bound_rows(self):
        rows = ppe_cppe_lower_bound_rows([(2, 4), (4, 6)])
        assert rows[0].paper_budget_bits is None  # k < 6: theorem not stated
        assert rows[1].collision_at_paper_budget is True
        assert rows[1].pigeonhole_bits > rows[1].selection_budget_bits

    def test_pigeonhole_consistency(self):
        rows = selection_lower_bound_rows([(5, 1)])
        row = rows[0]
        assert pigeonhole_forces_collision(row.class_size, row.pigeonhole_bits - 1)
        assert not pigeonhole_forces_collision(row.class_size, row.pigeonhole_bits)


class TestStatistics:
    def test_summarize_graph(self):
        summary = summarize_graph(generators.asymmetric_cycle(6))
        assert summary.num_nodes == 6
        assert summary.feasible
        assert summary.selection_index == 1
        assert summary.view_classes_by_depth[0] == 1
        assert summary.view_classes_by_depth[-1] == 6

    def test_summary_of_infeasible_graph(self):
        summary = summarize_graph(generators.cycle_graph(5))
        assert not summary.feasible
        assert summary.selection_index is None

    def test_view_class_profile_monotone(self):
        profile = view_class_profile(generators.random_connected_graph(10, 4, seed=2), 4)
        assert profile == sorted(profile)

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]
        assert "33" in lines[2] or "33" in lines[3]
