"""Delta-aware incremental recompute: edit scripts, replay, cache, service.

The contract under test is *byte-identity*: a mutation applied as a
:class:`~repro.portgraph.delta.GraphDelta` and replayed over the base
graph's warm state -- patched CSR, dirty-ball partition replay, carried
kernel memos -- must be indistinguishable, in every observable, from
building the mutated graph cold.  The hypothesis suite at the bottom
drives random seeded edit scripts through both kernel backends and a
store round-trip; the targeted classes above it pin the individual
layers (op validation, cache lifecycle events, the ψ-memo write-through
regression, the service envelope, the verified delta-lifecycle model).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Task, is_feasible
from repro.kernel import numpy_available, use_backend
from repro.portgraph import generators
from repro.portgraph.delta import DELTA_OPS, DeltaError, GraphDelta
from repro.portgraph.graph import PortLabeledGraph
from repro.portgraph.io import graph_to_dict
from repro.runner import GraphSpec, SweepSpec, refinement_cache
from repro.runner.runner import evaluate_graph
from repro.scenarios import (
    MUTATION_KINDS,
    corpus_specs,
    mutation_stream,
    mutation_sweep_items,
)
from repro.service.protocol import (
    DELTA_DONE,
    DELTA_EVALUATING,
    DELTA_INVALIDATING,
    DELTA_RECEIVED,
    DELTA_REPLAYING,
    DELTA_RESOLVING,
    DELTA_STATES,
    DELTA_TERMINAL,
    DELTA_TRANSITIONS,
    DeltaStatus,
    ProtocolViolation,
    delta_transition,
)
from repro.service.service import ServiceError, compute_election, deterministic_response
from repro.store import ArtifactStore
from repro.verify import DeltaLifecycleModel, check_model, run_verification
from repro.verify.mutants import SkipInvalidationMutant

needs_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

BACKENDS = ("python",) + (("numpy",) if numpy_available() else ())


@pytest.fixture(autouse=True)
def _detached_cache(isolated_refinement_cache):
    yield


def _fresh_copy(graph) -> PortLabeledGraph:
    """An independent instance of the same labeled graph (no memoised state)."""
    return PortLabeledGraph(
        [graph.adjacency(v) for v in graph.nodes()], name=graph.name, validate=False
    )


def _cold_tables(graph):
    """Canonical fixpoint tables of a cold rebuild (no warm state leaks in)."""
    fresh = _fresh_copy(graph)
    engine = fresh.refinement_engine()
    engine.ensure_stable()
    return engine.canonical_tables(), engine.class_counts, fresh.fingerprint()


def _parsed(payload: dict) -> dict:
    """A worker-side parsed query, the shape ``compute_election`` consumes."""
    return {
        "graph": payload.get("graph"),
        "spec": payload.get("spec"),
        "base": payload.get("base"),
        "delta": payload.get("delta"),
        "tasks": list(Task.ordered()),
        "max_depth": None,
        "max_states": 200_000,
        "advice": False,
    }


# --------------------------------------------------------------------- #
# edit-script object
# --------------------------------------------------------------------- #
class TestGraphDelta:
    def test_payload_round_trip_and_digest_stability(self):
        ops = [
            {"op": "remove-edge", "v": 0, "u": 1},
            {"op": "add-edge", "v": 0, "u": 4},
            {"op": "add-node", "anchor": 2},
            {"op": "remove-node", "v": 5},
            {"op": "relabel-ports", "v": 3, "perm": [1, 0]},
        ]
        delta = GraphDelta.from_payload(ops)
        assert delta.edit_distance == len(delta) == 5
        assert delta.topology_changed
        again = GraphDelta.from_payload(delta.to_payload())
        assert again == delta and hash(again) == hash(delta)
        assert again.digest() == delta.digest()

    def test_relabel_only_script_does_not_change_topology(self):
        delta = GraphDelta([{"op": "relabel-ports", "v": 0, "perm": [1, 0]}])
        assert not delta.topology_changed

    def test_rejects_malformed_payloads(self):
        with pytest.raises(DeltaError):
            GraphDelta.from_payload({"op": "add-edge"})  # not a list
        with pytest.raises(DeltaError):
            GraphDelta.from_payload([])  # empty script
        with pytest.raises(DeltaError):
            GraphDelta([{"op": "grow-edge", "v": 0, "u": 1}])  # unknown op
        with pytest.raises(DeltaError):
            GraphDelta([{"op": "add-edge", "v": 0}])  # missing endpoint
        with pytest.raises(DeltaError):
            GraphDelta(["add-edge"])  # bare string is not an op object

    def test_apply_rejects_invalid_edits(self):
        base = generators.grid_graph(3, 3)
        cases = [
            [{"op": "remove-edge", "v": 0, "u": 4}],  # not an edge
            [{"op": "add-edge", "v": 0, "u": 1}],  # already an edge
            [{"op": "add-edge", "v": 2, "u": 2}],  # self-loop
            [{"op": "remove-edge", "v": 0, "u": 999}],  # out of range
            [{"op": "add-node", "anchor": 99}],  # dangling anchor
        ]
        for ops in cases:
            with pytest.raises(DeltaError):
                GraphDelta(ops).apply_to(base)

    def test_remove_node_renames_and_reports_map(self):
        base = generators.grid_graph(3, 3)
        result = GraphDelta([{"op": "remove-node", "v": 4}]).apply_to(base)
        assert result.graph.num_nodes == base.num_nodes - 1
        assert result.topology_changed
        # node_map is new handle -> base handle: 4 is gone, the rest survive
        assert 4 not in result.node_map
        assert sorted(result.node_map) == [v for v in range(base.num_nodes) if v != 4]


# --------------------------------------------------------------------- #
# kernel replay byte-identity
# --------------------------------------------------------------------- #
class TestKernelReplay:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cumulative_prefixes_replay_byte_identical(self, backend):
        with use_backend(backend):
            base = generators.grid_graph(4, 4)
            for delta in mutation_stream(base, seed=9, length=4):
                result = delta.apply_to(base)
                warm = result.graph
                warm.adopt_csr(base.csr().patched(result))
                from repro.kernel.refine import refinement_delta

                engine = refinement_delta(
                    base.refinement_engine(), warm.csr(), result.node_map, result.touched
                )
                engine.ensure_stable()
                cold_tables, cold_counts, cold_fp = _cold_tables(warm)
                assert engine.canonical_tables() == cold_tables
                assert engine.class_counts == cold_counts

    @pytest.mark.parametrize(
        "kinds",
        [
            None,  # node joins/leaves: exercises the renamed-handle slow path
            # identity node_map: exercises the memcpy + offset-shift fast path
            ("add-edge", "remove-edge", "relabel-ports"),
            ("relabel-ports",),  # identity with zero degree shifts
        ],
    )
    def test_patched_csr_matches_built_csr(self, kinds):
        base = generators.torus_graph(4, 5)
        for delta in mutation_stream(base, seed=2, length=3, kinds=kinds):
            result = delta.apply_to(base)
            patched = base.csr().patched(result)
            built = _fresh_copy(result.graph).csr()
            assert patched.offsets == built.offsets
            assert patched.neighbors == built.neighbors
            assert patched.reverse_ports == built.reverse_ports
            assert patched.ports == built.ports


# --------------------------------------------------------------------- #
# cache lifecycle + lineage
# --------------------------------------------------------------------- #
class TestDeltaEntry:
    def test_first_call_replays_second_hits_with_events(self):
        base = generators.grid_graph(3, 4)
        delta = mutation_stream(base, seed=5, length=1)[0]
        events: list = []
        entry = refinement_cache.delta_entry(base, delta, events=events)
        assert events == ["base_hit", "memos_invalidated", "replayed"]
        assert entry.lineage == (base.fingerprint(), delta.digest())
        again: list = []
        hit = refinement_cache.delta_entry(base, delta, events=again)
        assert again == ["cache_hit"]
        assert hit is entry

    def test_store_record_of_mutated_graph_beats_replay(self, tmp_path):
        base = generators.grid_graph(3, 4)
        delta = mutation_stream(base, seed=5, length=1)[0]
        mutated = delta.apply_to(base).graph
        store = ArtifactStore(tmp_path / "store")
        refinement_cache.attach_store(store)
        sweep = SweepSpec.make((), tasks=list(Task.ordered()), max_states=200_000)
        evaluate_graph(_fresh_copy(mutated), sweep)  # persists the exact record
        refinement_cache.clear()
        events: list = []
        entry = refinement_cache.delta_entry(base, delta, events=events)
        assert events == ["cache_hit"]
        assert entry.memo  # arrived warm, ψ memos included
        refinement_cache.attach_store(None)

    def test_feasibility_memo_not_carried_across_partition_change(self):
        base = generators.circulant_graph(8, (1,))  # symmetric: infeasible
        refinement_cache.entry(base).memo[("feasible",)] = is_feasible(base)
        assert refinement_cache.entry(base).memo[("feasible",)] is False
        delta = GraphDelta([{"op": "add-edge", "v": 0, "u": 3}])  # breaks symmetry
        entry = refinement_cache.delta_entry(base, delta)
        assert ("feasible",) not in entry.memo
        assert is_feasible(entry.graph, refinement=entry.refinement) is True

    def test_inapplicable_delta_raises_delta_error(self):
        base = generators.grid_graph(3, 3)
        with pytest.raises(DeltaError):
            refinement_cache.delta_entry(
                base, GraphDelta([{"op": "remove-edge", "v": 0, "u": 8}])
            )


class TestPersistRegression:
    def test_delta_entry_never_writes_through_stale_psi_memos(self, tmp_path):
        """The ψ_PE-feasibility-flip write-through regression.

        Evaluating the *base* fills its entry with ψ/advice memos; the
        delta flips feasibility (symmetric ring -> chorded ring).  The
        derived entry must start memo-clean, so the record persisted for
        the mutated fingerprint carries freshly computed answers plus the
        delta lineage -- never the base's stale ψ table.
        """
        store = ArtifactStore(tmp_path / "store")
        refinement_cache.attach_store(store)
        try:
            base = generators.circulant_graph(8, (1,))
            sweep = SweepSpec.make((), tasks=list(Task.ordered()), max_states=200_000)
            base_record = evaluate_graph(base, sweep)
            assert base_record["feasible"] is False
            delta = GraphDelta([{"op": "add-edge", "v": 0, "u": 3}])
            entry = refinement_cache.delta_entry(base, delta)
            assert not entry.memo, "derived entry must start with an empty memo"
            warm_record = evaluate_graph(entry.graph, sweep)
            assert warm_record["feasible"] is True
            stored = store.load_for_graph(entry.graph)
            assert stored is not None
            assert stored.parent_fingerprint == base.fingerprint()
            assert stored.delta_digest == delta.digest()
            # the stored memo answers equal a cold evaluation of the graph
            refinement_cache.clear()
            refinement_cache.attach_store(None)
            cold_record = evaluate_graph(_fresh_copy(entry.graph), sweep)
            for key in ("feasible", "psi_S", "psi_PE", "psi_PPE", "psi_CPPE"):
                assert warm_record[key] == cold_record[key], key
        finally:
            refinement_cache.attach_store(None)


# --------------------------------------------------------------------- #
# mutation streams
# --------------------------------------------------------------------- #
class TestMutationStreams:
    def test_streams_are_seed_deterministic_and_cumulative(self):
        base = generators.grid_graph(4, 4)
        one = mutation_stream(base, seed=13, length=4)
        two = mutation_stream(base, seed=13, length=4)
        assert [d.digest() for d in one] == [d.digest() for d in two]
        assert [d.edit_distance for d in one] == [1, 2, 3, 4]
        # cumulative: each script extends the previous one
        for shorter, longer in zip(one, one[1:]):
            assert longer.ops[: len(shorter.ops)] == shorter.ops
        assert mutation_stream(base, seed=14, length=4)[-1].digest() != one[-1].digest()

    def test_every_prefix_applies_and_stays_connected(self):
        for spec in corpus_specs(3, seed=21, corpus="dynamic"):
            base = spec.build()
            for delta in mutation_stream(base, seed=8, length=3):
                mutated = delta.apply_to(base).graph
                # connectivity is what the generators promise by never
                # removing bridges or cut vertices
                from repro.portgraph.validation import check_connected

                adjacency = [mutated.adjacency(v) for v in mutated.nodes()]
                assert check_connected(adjacency), (spec.label, delta.ops)

    def test_kind_restriction_and_validation(self):
        base = generators.grid_graph(4, 4)
        only_ports = mutation_stream(
            base, seed=3, length=3, kinds=("relabel-ports",)
        )
        assert all(
            op[0] == "relabel-ports" for delta in only_ports for op in delta.ops
        )
        with pytest.raises(ValueError):
            mutation_stream(base, seed=3, length=2, kinds=("melt-node",))

    def test_sweep_items_envelope(self):
        specs = corpus_specs(2, seed=7, corpus="dynamic")
        items = mutation_sweep_items(specs, seed=7, per_graph=2)
        assert len(items) == 4
        for item in items:
            assert set(item) == {"base", "delta"}
            assert isinstance(item["delta"], list) and item["delta"]
            GraphSpec.from_dict(item["base"])  # round-trips as a spec

    def test_dynamic_xl_corpus_leads_with_5k_grid(self):
        spec = corpus_specs(1, seed=0, corpus="dynamic-xl")[0]
        assert spec.kind == "grid"
        params = dict(spec.params)
        assert params["rows"] * params["cols"] >= 5_000

    def test_region_restricted_stream_draws_only_region_nodes(self):
        base = generators.grid_graph(6, 6)
        region = range(12)
        stream = mutation_stream(
            base,
            seed=4,
            length=4,
            kinds=("add-edge", "remove-edge", "relabel-ports"),
            region=region,
        )
        for delta in stream:
            for op in delta.ops:
                named = op[1:3] if op[0] in ("add-edge", "remove-edge") else op[1:2]
                assert all(v in region for v in named), op

    def test_region_none_preserves_legacy_draw_sequence(self):
        base = generators.grid_graph(4, 4)
        legacy = mutation_stream(base, seed=13, length=4)
        explicit = mutation_stream(base, seed=13, length=4, region=None)
        assert [d.digest() for d in legacy] == [d.digest() for d in explicit]

    def test_beacon_tail_member_is_xl_and_region_edits_apply(self):
        spec = corpus_specs(3, seed=10, corpus="dynamic-xl")[2]
        assert spec.kind == "beacon-tail"
        blob = dict(spec.params)["blob"]
        base = spec.build()
        assert base.num_nodes >= 5_000
        delta = mutation_stream(
            base,
            seed=10,
            length=1,
            kinds=("add-edge", "remove-edge", "relabel-ports"),
            region=range(blob),
        )[0]
        result = delta.apply_to(base)
        assert all(v < blob for v in result.touched)


# --------------------------------------------------------------------- #
# protocol + verified model
# --------------------------------------------------------------------- #
class TestDeltaProtocol:
    def test_happy_paths(self):
        for events, final in [
            (["lookup", "cache_hit", "evaluated"], DELTA_DONE),
            (
                ["lookup", "base_hit", "memos_invalidated", "replayed", "evaluated"],
                DELTA_DONE,
            ),
            (["lookup", "base_miss", "recomputed", "evaluated"], DELTA_DONE),
        ]:
            status = DeltaStatus()
            for event in events:
                status.apply(event)
            assert status.state == final and status.events == events

    def test_illegal_transitions_raise(self):
        with pytest.raises(ProtocolViolation):
            delta_transition(DELTA_RECEIVED, "replayed")
        with pytest.raises(ProtocolViolation):
            delta_transition(DELTA_RESOLVING, "replayed")  # must invalidate first
        with pytest.raises(ProtocolViolation):
            delta_transition(DELTA_DONE, "lookup")  # terminal

    def test_table_is_closed_over_declared_states(self):
        for (state, _event), nxt in DELTA_TRANSITIONS.items():
            assert state in DELTA_STATES and nxt in DELTA_STATES
            assert state not in DELTA_TERMINAL

    def test_model_verifies_clean_and_mutant_is_caught(self):
        result = check_model(DeltaLifecycleModel(), max_states=10_000, max_depth=100)
        assert result.ok and result.complete
        mutant = check_model(SkipInvalidationMutant(), max_states=10_000, max_depth=100)
        assert any(v.kind == "invariant" for v in mutant.violations)

    def test_run_verification_includes_delta_leg(self):
        report = run_verification(["delta"], max_states=10_000, max_depth=100)
        assert report["ok"] is True
        assert [m["model"] for m in report["models"]] == ["delta-lifecycle"]
        caught = {m["model"]: m["caught"] for m in report["mutants"]}
        assert caught["delta-lifecycle[mutant:skip-invalidation]"] is True


# --------------------------------------------------------------------- #
# service envelope
# --------------------------------------------------------------------- #
class TestServiceDelta:
    def test_spec_base_replays_then_hits_and_matches_cold_submission(self):
        spec = {"kind": "grid", "params": {"rows": 3, "cols": 3}}
        ops = [
            {"op": "remove-edge", "v": 0, "u": 1},
            {"op": "add-edge", "v": 0, "u": 4},
        ]
        first = compute_election(_parsed({"base": spec, "delta": ops}))
        assert first["delta_path"] == [
            "lookup",
            "base_hit",
            "memos_invalidated",
            "replayed",
            "evaluated",
        ]
        assert first["delta"]["base"] == GraphSpec.from_dict(spec).label
        assert first["delta"]["edit_distance"] == 2
        repeat = compute_election(_parsed({"base": spec, "delta": ops}))
        assert repeat["delta_path"] == ["lookup", "cache_hit", "evaluated"]
        assert deterministic_response(repeat) == deterministic_response(first)
        # a plain submission of the mutated graph answers byte-identically
        base = GraphSpec.from_dict(spec).build()
        mutated = GraphDelta(ops).apply_to(base).graph
        cold = compute_election(_parsed({"graph": graph_to_dict(mutated)}))
        for key in ("fingerprint", "feasible", "indices", "n", "m"):
            assert cold[key] == first[key], key

    def test_fingerprint_base_resolves_through_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        refinement_cache.attach_store(store)
        try:
            spec = {"kind": "grid", "params": {"rows": 3, "cols": 3}}
            seeded = compute_election(_parsed({"spec": spec}))
            response = compute_election(
                _parsed(
                    {
                        "base": seeded["fingerprint"],
                        "delta": [{"op": "add-edge", "v": 0, "u": 4}],
                    }
                )
            )
            assert response["delta"]["edit_distance"] == 1
            assert response["delta_path"][1] in ("base_hit", "cache_hit")
        finally:
            refinement_cache.attach_store(None)

    def test_fingerprint_base_miss_is_404(self, tmp_path):
        refinement_cache.attach_store(ArtifactStore(tmp_path / "store"))
        try:
            with pytest.raises(ServiceError) as info:
                compute_election(
                    _parsed(
                        {"base": "0" * 64, "delta": [{"op": "add-edge", "v": 0, "u": 4}]}
                    )
                )
            assert info.value.status == 404
        finally:
            refinement_cache.attach_store(None)

    def test_inapplicable_delta_is_400(self):
        with pytest.raises(ServiceError) as info:
            compute_election(
                _parsed(
                    {
                        "base": {"kind": "grid", "params": {"rows": 3, "cols": 3}},
                        "delta": [{"op": "remove-edge", "v": 0, "u": 8}],
                    }
                )
            )
        assert info.value.status == 400

    def test_delta_path_is_volatile_in_deterministic_response(self):
        spec = {"kind": "grid", "params": {"rows": 3, "cols": 3}}
        ops = [{"op": "add-edge", "v": 0, "u": 4}]
        response = compute_election(_parsed({"base": spec, "delta": ops}))
        cleaned = deterministic_response(response)
        assert "delta_path" not in cleaned
        assert "delta" in cleaned  # the identifying section stays


# --------------------------------------------------------------------- #
# hypothesis: random edit scripts == cold recompute, everywhere
# --------------------------------------------------------------------- #
_BASE_BUILDERS = (
    lambda: generators.grid_graph(4, 4),
    lambda: generators.torus_graph(3, 5),
    lambda: generators.circulant_graph(10, (1, 2)),
    lambda: generators.random_regular_graph(10, 4, seed=6),
    lambda: generators.erdos_renyi_graph(11, seed=9),
)


class TestDeltaProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        base_index=st.integers(min_value=0, max_value=len(_BASE_BUILDERS) - 1),
        seed=st.integers(min_value=0, max_value=10_000),
        length=st.integers(min_value=1, max_value=4),
    )
    def test_replay_matches_cold_recompute(self, base_index, seed, length):
        base = _BASE_BUILDERS[base_index]()
        delta = mutation_stream(base, seed=seed, length=length)[-1]
        refinement_cache.clear()
        entry = refinement_cache.delta_entry(base, delta)
        warm_engine = entry.graph.refinement_engine()
        warm_engine.ensure_stable()
        cold_tables, cold_counts, cold_fp = _cold_tables(entry.graph)
        assert warm_engine.canonical_tables() == cold_tables
        assert warm_engine.class_counts == cold_counts
        assert entry.graph.fingerprint() == cold_fp
        assert is_feasible(entry.graph, refinement=entry.refinement) == is_feasible(
            _fresh_copy(entry.graph)
        )

    @needs_numpy
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_backends_agree_on_replayed_tables(self, seed):
        base_graph = generators.grid_graph(4, 5)
        delta = mutation_stream(base_graph, seed=seed, length=3)[-1]
        observed = {}
        for backend in ("python", "numpy"):
            with use_backend(backend):
                refinement_cache.clear()
                entry = refinement_cache.delta_entry(_fresh_copy(base_graph), delta)
                engine = entry.graph.refinement_engine()
                engine.ensure_stable()
                observed[backend] = (
                    engine.canonical_tables(),
                    engine.class_counts,
                    entry.graph.fingerprint(),
                )
        assert observed["python"] == observed["numpy"]

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_store_round_trip_preserves_lineage_and_answers(self, seed, tmp_path_factory):
        base = generators.grid_graph(4, 4)
        delta = mutation_stream(base, seed=seed, length=2)[-1]
        store = ArtifactStore(tmp_path_factory.mktemp("delta-store"))
        refinement_cache.clear()
        refinement_cache.attach_store(store)
        try:
            sweep = SweepSpec.make((), tasks=list(Task.ordered()), max_states=200_000)
            entry = refinement_cache.delta_entry(base, delta)
            warm = evaluate_graph(entry.graph, sweep)
            record = store.load_for_graph(entry.graph)
            assert record is not None
            assert record.parent_fingerprint == base.fingerprint()
            assert record.delta_digest == delta.digest()
            refinement_cache.clear()
            reloaded: list = []
            again = refinement_cache.delta_entry(base, delta, events=reloaded)
            assert reloaded == ["cache_hit"]  # the stored record answered
            replayed = evaluate_graph(again.graph, sweep)
            for key in ("feasible", "psi_S", "psi_PE", "psi_PPE", "psi_CPPE"):
                assert replayed[key] == warm[key], key
        finally:
            refinement_cache.attach_store(None)
