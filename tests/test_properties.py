"""Cross-cutting property-based tests (hypothesis) on the library's core invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.advice import decode_map_advice, encode_map_advice
from repro.algorithms import weaken_outputs
from repro.core import (
    LEADER,
    Task,
    all_election_indices,
    indices_respect_hierarchy,
    is_feasible,
    path_election_assignment,
    selection_assignment,
    selection_index,
    validate,
)
from repro.portgraph import generators
from repro.portgraph.io import graph_from_dict, graph_to_dict
from repro.portgraph.paths import (
    bfs_distances,
    complete_ports_of_path,
    outgoing_ports_of_path,
    path_from_complete_ports,
    shortest_path,
)
from repro.views import ViewRefinement, augmented_view, view_from_symbols, view_to_symbols


graph_strategy = st.builds(
    generators.random_connected_graph,
    st.integers(min_value=3, max_value=14),
    st.integers(min_value=0, max_value=10),
    seed=st.integers(min_value=0, max_value=10_000),
)


class TestGraphInvariants:
    @given(graph=graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_serialization_roundtrip(self, graph):
        assert graph_from_dict(graph_to_dict(graph)) == graph
        assert decode_map_advice(encode_map_advice(graph)) == graph

    @given(graph=graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_handshake_lemma_and_port_consistency(self, graph):
        assert sum(graph.degree_sequence()) == 2 * graph.num_edges
        for v in graph.nodes():
            for p in graph.ports(v):
                u, q = graph.endpoint(v, p)
                assert graph.endpoint(u, q) == (v, p)

    @given(graph=graph_strategy, source=st.integers(min_value=0, max_value=13))
    @settings(max_examples=30, deadline=None)
    def test_shortest_paths_are_consistent_with_bfs_distances(self, graph, source):
        source %= graph.num_nodes
        dist = bfs_distances(graph, source)
        for target in list(graph.nodes())[:6]:
            path = shortest_path(graph, source, target)
            assert path is not None
            assert len(path) - 1 == dist[target]
            # port-sequence encodings of the path round-trip
            assert path_from_complete_ports(
                graph, source, complete_ports_of_path(graph, path)
            ) == path
            out = outgoing_ports_of_path(graph, path)
            assert len(out) == len(path) - 1


class TestViewInvariants:
    @given(graph=graph_strategy, depth=st.integers(min_value=0, max_value=3))
    @settings(max_examples=30, deadline=None)
    def test_view_symbol_roundtrip_and_size(self, graph, depth):
        view = augmented_view(graph, 0, depth)
        symbols = view_to_symbols(view)
        assert view_from_symbols(symbols) == view
        assert symbols[0] == depth
        assert view.height == depth

    @given(graph=graph_strategy)
    @settings(max_examples=30, deadline=None)
    def test_refinement_classes_never_coarsen(self, graph):
        refinement = ViewRefinement(graph)
        stable = refinement.ensure_stable()
        counts = [refinement.num_classes(d) for d in range(stable + 2)]
        assert counts == sorted(counts)
        assert counts[-1] == counts[-2]  # stable means stable

    @given(graph=graph_strategy)
    @settings(max_examples=30, deadline=None)
    def test_feasibility_iff_some_unique_node_eventually(self, graph):
        refinement = ViewRefinement(graph)
        feasible = is_feasible(graph, refinement=refinement)
        index = selection_index(graph, refinement=refinement)
        assert feasible == (index is not None)
        if feasible:
            leader = selection_assignment(graph, index, refinement=refinement)
            assert refinement.has_unique_view(leader, index)

    @given(graph=graph_strategy)
    @settings(max_examples=20, deadline=None)
    def test_equal_view_classes_have_equal_size(self, graph):
        refinement = ViewRefinement(graph)
        stable = refinement.ensure_stable()
        sizes = {len(m) for m in refinement.classes(stable).values()}
        assert len(sizes) == 1


class TestElectionInvariants:
    @given(graph=graph_strategy)
    @settings(max_examples=15, deadline=None)
    def test_minimum_time_solutions_validate_and_weaken(self, graph):
        indices = all_election_indices(graph)
        assert indices_respect_hierarchy(indices)
        if indices[Task.COMPLETE_PORT_PATH_ELECTION] is None:
            return
        depth = indices[Task.COMPLETE_PORT_PATH_ELECTION]
        leader, sequences = path_election_assignment(graph, depth, complete=True)
        outputs = dict(sequences)
        outputs[leader] = LEADER
        assert validate(Task.COMPLETE_PORT_PATH_ELECTION, graph, outputs).ok
        for target in (Task.PORT_PATH_ELECTION, Task.PORT_ELECTION, Task.SELECTION):
            assert validate(target, graph, weaken_outputs(
                Task.COMPLETE_PORT_PATH_ELECTION, outputs, target
            )).ok

    @given(graph=graph_strategy, depth_bump=st.integers(min_value=1, max_value=2))
    @settings(max_examples=15, deadline=None)
    def test_solvability_is_monotone_in_time(self, graph, depth_bump):
        # if Selection is solvable at ψ_S, it stays solvable with more time
        index = selection_index(graph)
        if index is None:
            return
        later = selection_assignment(graph, index + depth_bump)
        assert later is not None
