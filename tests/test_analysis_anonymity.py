"""Tests for the per-node anonymity profiles (extension)."""

from __future__ import annotations

import pytest

from repro.analysis import anonymity_depths, anonymity_profile
from repro.core import selection_index
from repro.families import build_gdk_member
from repro.portgraph import generators


class TestAnonymityDepths:
    def test_star_centre_is_unique_immediately(self):
        graph = generators.star_graph(4)
        depths = anonymity_depths(graph)
        assert depths[0] == 0
        # leaves become unique once they see their incoming port at the centre
        assert all(depths[v] == 1 for v in range(1, 5))

    def test_symmetric_cycle_is_forever_anonymous(self):
        graph = generators.cycle_graph(6)
        profile = anonymity_profile(graph)
        assert profile.selection_index is None
        assert len(profile.forever_anonymous) == 6
        assert profile.classes_by_depth == [1]

    def test_asymmetric_cycle_profile(self):
        graph = generators.asymmetric_cycle(6)
        profile = anonymity_profile(graph)
        assert profile.selection_index == selection_index(graph) == 1
        assert profile.forever_anonymous == []
        assert profile.max_finite_depth >= 1
        assert profile.classes_by_depth[-1] == 6

    def test_min_depth_is_selection_index(self):
        graph = generators.random_connected_graph(10, extra_edges=4, seed=6)
        profile = anonymity_profile(graph)
        finite = [d for d in profile.depths.values() if d is not None]
        if profile.selection_index is not None:
            assert min(finite) == profile.selection_index

    def test_gdk_member_profile_matches_lemma_2_6(self):
        member = build_gdk_member(4, 1, 2)
        profile = anonymity_profile(member.graph)
        # the distinguished root is the only node unique at depth k = 1
        assert profile.depths[member.distinguished_root] == 1
        others_at_k = [
            v for v, d in profile.depths.items() if d is not None and d <= 1 and v != member.distinguished_root
        ]
        assert others_at_k == []
