"""Tests for the class G_{Δ,k} (Section 2.2.1) and its Lemmas 2.5-2.8 / Fact 2.3."""

from __future__ import annotations

import pytest

from repro.analysis import corresponding_views_equal, only_unique_view_nodes
from repro.core import Task, selection_index, validate
from repro.families import build_gdk_member, gdk_class_size, fact_2_3_class_size
from repro.algorithms import gdk_selection_outputs
from repro.views import ViewRefinement, views_equal_across_graphs


class TestFact23:
    @pytest.mark.parametrize(
        "delta,k,expected",
        [
            (3, 1, 2),
            (4, 1, 9),
            (5, 1, 64),
            (4, 2, 3**6),
            (5, 2, 4**12),
            (8, 3, 7 ** (6 * 49)),
        ],
    )
    def test_class_size_formula(self, delta, k, expected):
        assert gdk_class_size(delta, k) == expected
        assert fact_2_3_class_size(delta, k) == expected


class TestConstruction:
    @pytest.mark.parametrize("delta,k,index", [(3, 1, 1), (4, 1, 1), (4, 1, 5), (5, 1, 3), (4, 2, 2)])
    def test_member_builds_and_is_valid(self, delta, k, index):
        member = build_gdk_member(delta, k, index)
        graph = member.graph
        assert graph.max_degree == delta
        assert len(member.cycle_nodes) == 4 * index - 1
        # every cycle node has degree 3, every tree root degree Δ
        for c in member.cycle_nodes:
            assert graph.degree(c) == 3
        for handles in member.trees.values():
            assert graph.degree(handles.root) == delta

    def test_number_of_trees(self):
        member = build_gdk_member(4, 1, 4)
        # 2 copies of T_{j,1} for j <= 4, T_{4,2} once, 2 copies of T_{j,2} for j < 4
        assert len(member.trees) == 2 * 4 + 1 + 2 * 3

    def test_index_validation(self):
        with pytest.raises(ValueError):
            build_gdk_member(4, 1, 0)
        with pytest.raises(ValueError):
            build_gdk_member(4, 1, 10)
        with pytest.raises(ValueError):
            build_gdk_member(2, 1, 1)


class TestLemmas:
    @pytest.mark.parametrize("delta,k,index", [(4, 1, 2), (4, 1, 5), (5, 1, 3), (4, 2, 2)])
    def test_lemma_2_6_unique_view_node_is_r_i2(self, delta, k, index):
        member = build_gdk_member(delta, k, index)
        unique = only_unique_view_nodes(member.graph, k)
        assert unique == [member.distinguished_root]

    @pytest.mark.parametrize("delta,k,index", [(4, 1, 1), (4, 1, 3), (5, 1, 2), (4, 2, 2)])
    def test_lemma_2_7_selection_index_is_k(self, delta, k, index):
        member = build_gdk_member(delta, k, index)
        refinement = ViewRefinement(member.graph)
        assert not refinement.unique_nodes(k - 1), "no node may be unique at depth k-1"
        assert selection_index(member.graph, refinement=refinement) == k

    def test_lemma_2_5_cycle_nodes_share_views_across_members(self):
        # B^k(c_m) in G_α equals B^k(c_{m'}) in G_β for all cycle positions.
        delta, k = 4, 1
        g2 = build_gdk_member(delta, k, 2)
        g4 = build_gdk_member(delta, k, 4)
        pairs = [(g2.cycle_nodes[m], g4.cycle_nodes[m_prime]) for m in range(3) for m_prime in range(5)]
        assert corresponding_views_equal(g2.graph, g4.graph, pairs, k)

    def test_lemma_2_8_tree_roots_share_views_across_members(self):
        # B^k(r_{j,b}) is the same in G_α and G_β for j <= α <= β.
        delta, k = 4, 1
        alpha, beta = 2, 5
        g_alpha = build_gdk_member(delta, k, alpha)
        g_beta = build_gdk_member(delta, k, beta)
        pairs = []
        for j in range(1, alpha + 1):
            for b in (1, 2):
                pairs.append((g_alpha.tree_root(j, b, 1), g_beta.tree_root(j, b, 1)))
        assert corresponding_views_equal(g_alpha.graph, g_beta.graph, pairs, k)

    def test_theorem_2_9_fooling_pair(self):
        # The two graphs G_α and G_β receiving the same advice cannot be told
        # apart by r_{α,2}: its depth-k views agree, yet in G_β there are two
        # copies of T_{α,2}, so any algorithm electing r_{α,2} in G_α elects
        # two nodes in G_β.
        delta, k = 4, 1
        alpha, beta = 2, 4
        g_alpha = build_gdk_member(delta, k, alpha)
        g_beta = build_gdk_member(delta, k, beta)
        r_alpha_in_alpha = g_alpha.tree_root(alpha, 2, 1)
        r_alpha_in_beta_copy1 = g_beta.tree_root(alpha, 2, 1)
        r_alpha_in_beta_copy2 = g_beta.tree_root(alpha, 2, 2)
        assert views_equal_across_graphs(
            g_alpha.graph, r_alpha_in_alpha, g_beta.graph, r_alpha_in_beta_copy1, k
        )
        refinement = ViewRefinement(g_beta.graph)
        assert refinement.views_equal(r_alpha_in_beta_copy1, r_alpha_in_beta_copy2, k)


class TestLemma27Algorithm:
    @pytest.mark.parametrize("delta,k,index", [(4, 1, 3), (5, 1, 2), (4, 2, 2)])
    def test_map_based_selection_validates(self, delta, k, index):
        member = build_gdk_member(delta, k, index)
        outputs = gdk_selection_outputs(member)
        result = validate(Task.SELECTION, member.graph, outputs)
        assert result.ok
        assert result.leader == member.distinguished_root
