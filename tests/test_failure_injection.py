"""Failure injection: corrupted solutions, tampered advice, misbehaving nodes.

Correctness claims are only as good as the validators that check them, so
this module perturbs known-good solutions in many ways and asserts that every
perturbation is caught, and that the simulator rejects protocol violations.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.advice import selection_with_advice_scheme
from repro.advice.selection_advice import SelectionFromViewAdvice
from repro.core import LEADER, NON_LEADER, Task, all_election_indices, path_election_assignment, port_election_assignment, validate
from repro.portgraph import generators
from repro.sim import NodeAlgorithm, run_synchronous


def _valid_pe_solution(graph):
    index = all_election_indices(graph)[Task.PORT_ELECTION]
    leader, ports = port_election_assignment(graph, index)
    outputs = dict(ports)
    outputs[leader] = LEADER
    return leader, outputs


def _valid_cppe_solution(graph):
    index = all_election_indices(graph)[Task.COMPLETE_PORT_PATH_ELECTION]
    leader, sequences = path_election_assignment(graph, index, complete=True)
    outputs = dict(sequences)
    outputs[leader] = LEADER
    return leader, outputs


class TestCorruptedSelection:
    def test_removing_the_leader_is_caught(self):
        graph = generators.star_graph(4)
        outputs = {v: NON_LEADER for v in graph.nodes()}
        assert not validate(Task.SELECTION, graph, outputs).ok

    def test_adding_a_second_leader_is_caught(self):
        graph = generators.star_graph(4)
        outputs = {v: NON_LEADER for v in graph.nodes()}
        outputs[0] = LEADER
        outputs[1] = LEADER
        assert not validate(Task.SELECTION, graph, outputs).ok

    def test_dropping_a_node_is_caught(self):
        graph = generators.star_graph(4)
        outputs = {v: NON_LEADER for v in graph.nodes() if v != 3}
        outputs[0] = LEADER
        assert not validate(Task.SELECTION, graph, outputs).ok


class TestCorruptedPortElection:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flipping_one_port_output_is_caught_or_still_valid_for_a_reason(self, seed):
        graph = generators.path_graph(6)
        leader, outputs = _valid_pe_solution(graph)
        rng = random.Random(seed)
        victim = rng.choice([v for v in graph.nodes() if v != leader])
        original = outputs[victim]
        for other_port in range(graph.degree(victim)):
            if other_port == original:
                continue
            corrupted = dict(outputs)
            corrupted[victim] = other_port
            result = validate(Task.PORT_ELECTION, graph, corrupted)
            # On a path graph the other port points away from the leader, so it must be caught.
            assert not result.ok

    def test_out_of_range_port_is_caught(self):
        graph = generators.asymmetric_cycle(6)
        leader, outputs = _valid_pe_solution(graph)
        victim = next(v for v in graph.nodes() if v != leader)
        outputs[victim] = 99
        assert not validate(Task.PORT_ELECTION, graph, outputs).ok

    def test_leader_also_outputting_a_port_masks_it_as_two_leaders(self):
        graph = generators.asymmetric_cycle(6)
        leader, outputs = _valid_pe_solution(graph)
        other = next(v for v in graph.nodes() if v != leader)
        outputs[other] = LEADER
        assert not validate(Task.PORT_ELECTION, graph, outputs).ok


class TestCorruptedPathElections:
    def test_truncating_a_path_is_caught(self):
        graph = generators.path_graph(5)
        leader, outputs = _valid_cppe_solution(graph)
        victim = max(v for v in graph.nodes() if v != leader and len(outputs[v]) >= 4)
        outputs[victim] = outputs[victim][:-2]
        result = validate(Task.COMPLETE_PORT_PATH_ELECTION, graph, outputs)
        assert not result.ok

    def test_swapping_incoming_port_is_caught(self):
        graph = generators.star_graph(3)
        leader, outputs = _valid_cppe_solution(graph)
        victim = next(v for v in graph.nodes() if v != leader)
        sequence = list(outputs[victim])
        sequence[1] = (sequence[1] + 1) % 3
        outputs[victim] = tuple(sequence)
        assert not validate(Task.COMPLETE_PORT_PATH_ELECTION, graph, outputs).ok

    @given(seed=st.integers(min_value=0, max_value=100), scramble=st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_random_scrambles_of_ppe_outputs_never_validate_silently_wrong(self, seed, scramble):
        graph = generators.random_connected_graph(7, extra_edges=2, seed=seed)
        indices = all_election_indices(graph)
        if indices[Task.PORT_PATH_ELECTION] is None:
            return
        leader, sequences = path_election_assignment(graph, indices[Task.PORT_PATH_ELECTION], complete=False)
        outputs = dict(sequences)
        outputs[leader] = LEADER
        rng = random.Random(seed * 31 + scramble)
        victim = rng.choice([v for v in graph.nodes() if v != leader])
        outputs[victim] = tuple(rng.randrange(0, graph.max_degree + 1) for _ in range(scramble))
        result = validate(Task.PORT_PATH_ELECTION, graph, outputs)
        if result.ok:
            # if it still validates, the scrambled sequence must genuinely be a
            # simple path to the leader -- re-check by hand
            from repro.portgraph.paths import follow_ports, is_simple_node_sequence

            path = follow_ports(graph, victim, outputs[victim])
            assert path is not None and is_simple_node_sequence(path) and path[-1] == leader


class TestTamperedAdvice:
    def test_selection_scheme_with_wrong_graph_advice_elects_nobody(self):
        # advice computed for one graph, executed on a different one: the
        # encoded view matches no node, so no leader is elected and the
        # validator flags it.
        scheme = selection_with_advice_scheme()
        advice_graph = generators.star_graph(5)
        run_graph = generators.asymmetric_cycle(7)
        advice = scheme.oracle.advise(advice_graph)
        result = run_synchronous(run_graph, scheme.algorithm_factory, advice=advice)
        assert not validate(Task.SELECTION, run_graph, result.outputs).ok

    def test_garbage_advice_is_rejected_at_decode_time(self):
        algorithm = SelectionFromViewAdvice()
        with pytest.raises(Exception):
            algorithm.setup(2, "10")  # not a valid encoded view

    def test_missing_advice_is_rejected(self):
        algorithm = SelectionFromViewAdvice()
        with pytest.raises(ValueError):
            algorithm.setup(2, None)


class TestMisbehavingNodes:
    def test_sending_on_a_nonexistent_port_is_detected(self):
        class Rogue(NodeAlgorithm):
            def rounds_needed(self):
                return 1

            def messages_to_send(self, round_number):
                return {self.degree + 3: "out of range"}

            def receive(self, round_number, messages):
                pass

            def output(self):
                return None

        graph = generators.path_graph(3)
        with pytest.raises(RuntimeError):
            run_synchronous(graph, Rogue)

    def test_disagreeing_round_budgets_are_detected(self):
        class Moody(NodeAlgorithm):
            def rounds_needed(self):
                return self.degree  # depends on the degree: nodes disagree

            def messages_to_send(self, round_number):
                return {}

            def receive(self, round_number, messages):
                pass

            def output(self):
                return None

        graph = generators.star_graph(3)
        with pytest.raises(ValueError):
            run_synchronous(graph, Moody)
