"""Tests for the bounded-search guardrails of the PPE/CPPE index computation."""

from __future__ import annotations

import pytest

from repro.core import (
    SearchLimitExceeded,
    complete_port_path_election_index,
    port_path_election_index,
    reset_search_statistics,
    search_statistics,
)
from repro.core.election_index import _common_path_sequence
from repro.portgraph import generators


class TestCommonPathSearch:
    def test_finds_obvious_common_sequence(self):
        graph = generators.star_graph(4)
        # all leaves reach the centre with the single-port sequence (0,)
        sequence = _common_path_sequence(graph, [1, 2, 3, 4], 0, complete=False)
        assert sequence == (0,)

    def test_no_common_complete_sequence_for_star_leaves(self):
        graph = generators.star_graph(3)
        # the incoming ports at the centre differ, so no common CPPE sequence exists
        assert _common_path_sequence(graph, [1, 2, 3], 0, complete=True) is None

    def test_leader_inside_the_class_means_no_sequence(self):
        graph = generators.path_graph(4)
        assert _common_path_sequence(graph, [0, 1], 1, complete=False) is None

    def test_max_length_cuts_off_long_paths(self):
        graph = generators.path_graph(6)
        assert _common_path_sequence(graph, [5], 0, complete=False, max_length=2) is None
        assert _common_path_sequence(graph, [5], 0, complete=False) is not None

    def test_state_budget_raises_instead_of_guessing(self):
        graph = generators.asymmetric_cycle(8)
        # nodes 3 and 4 need several joint steps to reach node 0 together
        with pytest.raises(SearchLimitExceeded):
            _common_path_sequence(graph, [3, 4], 0, complete=False, max_states=2)

    def test_index_functions_propagate_the_limit(self):
        # at depth ψ_S = 1 the asymmetric cycle still has a large twin class far
        # from the irregular node, whose joint search needs more than 2 states
        graph = generators.asymmetric_cycle(9)
        with pytest.raises(SearchLimitExceeded):
            port_path_election_index(graph, max_states=2)
        with pytest.raises(SearchLimitExceeded):
            complete_port_path_election_index(graph, max_states=2)


class TestMemoryAccounting:
    def test_cell_budget_caps_the_real_footprint(self):
        # each stored state costs k positions plus k growing visited sets, so
        # a generous *state* budget can still be stopped by the *cell* budget
        graph = generators.path_graph(12)
        with pytest.raises(SearchLimitExceeded):
            _common_path_sequence(
                graph, [11], 0, complete=False, max_states=10_000, max_cells=12
            )
        # with the footprint cap lifted the same search completes
        assert (
            _common_path_sequence(
                graph, [11], 0, complete=False, max_states=10_000
            )
            is not None
        )

    def test_limit_message_reports_states_cells_and_class_size(self):
        graph = generators.asymmetric_cycle(9)
        with pytest.raises(SearchLimitExceeded) as excinfo:
            _common_path_sequence(graph, [3, 4], 0, complete=False, max_states=2)
        message = str(excinfo.value)
        assert "states" in message
        assert "cells" in message
        assert "class size 2" in message

    def test_max_cells_threads_through_the_index_functions(self):
        graph = generators.asymmetric_cycle(9)
        with pytest.raises(SearchLimitExceeded):
            port_path_election_index(graph, max_states=10_000, max_cells=8)
        with pytest.raises(SearchLimitExceeded):
            complete_port_path_election_index(graph, max_states=10_000, max_cells=8)

    def test_search_statistics_count_states_and_cells(self):
        reset_search_statistics()
        graph = generators.star_graph(4)
        assert _common_path_sequence(graph, [1, 2, 3, 4], 0, complete=False) == (0,)
        stats = search_statistics()
        assert stats["searches"] == 1
        assert stats["states"] >= 1
        assert stats["cells"] >= 8  # the start state alone holds 2 * 4 cells
        assert stats["limit_hits"] == 0
        reset_search_statistics()
        assert search_statistics() == {
            "searches": 0,
            "states": 0,
            "cells": 0,
            "limit_hits": 0,
        }
