"""Tests for the bounded-search guardrails of the PPE/CPPE index computation."""

from __future__ import annotations

import pytest

from repro.core import (
    SearchLimitExceeded,
    complete_port_path_election_index,
    port_path_election_index,
)
from repro.core.election_index import _common_path_sequence
from repro.portgraph import generators


class TestCommonPathSearch:
    def test_finds_obvious_common_sequence(self):
        graph = generators.star_graph(4)
        # all leaves reach the centre with the single-port sequence (0,)
        sequence = _common_path_sequence(graph, [1, 2, 3, 4], 0, complete=False)
        assert sequence == (0,)

    def test_no_common_complete_sequence_for_star_leaves(self):
        graph = generators.star_graph(3)
        # the incoming ports at the centre differ, so no common CPPE sequence exists
        assert _common_path_sequence(graph, [1, 2, 3], 0, complete=True) is None

    def test_leader_inside_the_class_means_no_sequence(self):
        graph = generators.path_graph(4)
        assert _common_path_sequence(graph, [0, 1], 1, complete=False) is None

    def test_max_length_cuts_off_long_paths(self):
        graph = generators.path_graph(6)
        assert _common_path_sequence(graph, [5], 0, complete=False, max_length=2) is None
        assert _common_path_sequence(graph, [5], 0, complete=False) is not None

    def test_state_budget_raises_instead_of_guessing(self):
        graph = generators.asymmetric_cycle(8)
        # nodes 3 and 4 need several joint steps to reach node 0 together
        with pytest.raises(SearchLimitExceeded):
            _common_path_sequence(graph, [3, 4], 0, complete=False, max_states=2)

    def test_index_functions_propagate_the_limit(self):
        # at depth ψ_S = 1 the asymmetric cycle still has a large twin class far
        # from the irregular node, whose joint search needs more than 2 states
        graph = generators.asymmetric_cycle(9)
        with pytest.raises(SearchLimitExceeded):
            port_path_election_index(graph, max_states=2)
        with pytest.raises(SearchLimitExceeded):
            complete_port_path_election_index(graph, max_states=2)
