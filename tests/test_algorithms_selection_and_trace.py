"""Tests for the map-based Selection algorithms and the simulator's trace accounting."""

from __future__ import annotations

import pytest

from repro.algorithms import selection_outputs
from repro.core import Task, selection_index, validate
from repro.portgraph import generators
from repro.sim import ExecutionTrace, RoundStats, ViewBasedAlgorithm, run_synchronous
from repro.views import ViewRefinement


class TestSelectionOutputs:
    def test_minimum_time_outputs_validate(self, small_feasible_graphs):
        for graph in small_feasible_graphs:
            outputs = selection_outputs(graph)
            assert validate(Task.SELECTION, graph, outputs).ok, graph.name

    def test_larger_depth_also_works(self):
        graph = generators.asymmetric_cycle(7)
        outputs = selection_outputs(graph, depth=3)
        assert validate(Task.SELECTION, graph, outputs).ok

    def test_depth_below_index_rejected(self):
        graph = generators.asymmetric_cycle(7)  # ψ_S = 1
        with pytest.raises(ValueError):
            selection_outputs(graph, depth=0)

    def test_infeasible_graph_rejected(self):
        with pytest.raises(ValueError):
            selection_outputs(generators.cycle_graph(6))

    def test_shared_refinement_is_honoured(self):
        graph = generators.path_graph(6)
        refinement = ViewRefinement(graph)
        outputs = selection_outputs(graph, refinement=refinement)
        leader = [v for v, value in outputs.items() if value == "leader"]
        assert len(leader) == 1
        assert refinement.has_unique_view(leader[0], selection_index(graph))


class _Chatty(ViewBasedAlgorithm):
    def decide(self, view):
        return view.degree


class TestTraceAccounting:
    def test_round_and_message_counts(self):
        graph = generators.asymmetric_cycle(5)
        result = run_synchronous(graph, lambda: _Chatty(2), advice="110")
        trace = result.trace
        assert trace.rounds == 2
        assert trace.advice_bits == 3
        assert len(trace.round_stats) == 2
        assert all(stats.messages == 2 * graph.num_edges for stats in trace.round_stats)
        assert trace.total_messages == 4 * graph.num_edges

    def test_trace_dataclasses(self):
        trace = ExecutionTrace()
        trace.record_round(1, 10)
        trace.record_round(2, 12)
        assert trace.rounds == 2
        assert trace.total_messages == 22
        assert trace.round_stats[0] == RoundStats(1, 10)

    def test_zero_round_trace(self):
        graph = generators.path_graph(3)
        result = run_synchronous(graph, lambda: _Chatty(0))
        assert result.trace.rounds == 0
        assert result.trace.total_messages == 0
        assert result.outputs == {0: 1, 1: 2, 2: 1}
