"""Tests for the batched experiment runner and the shared refinement cache."""

from __future__ import annotations

import json

import pytest

from repro.core import Task, all_election_indices
from repro.portgraph import generators
from repro.portgraph.graph import PortLabeledGraph
from repro.runner import (
    ExperimentRunner,
    GraphSpec,
    RefinementCache,
    SweepSpec,
    evaluate_graph_spec,
    graph_kinds,
    refinement_cache,
    run_sweep,
    shared_refinement,
)


@pytest.fixture(autouse=True)
def _fresh_process_cache():
    """Isolate every test from cache state left behind by other tests."""
    refinement_cache.clear()
    yield
    refinement_cache.clear()


def _reversal_perm(graph):
    return list(range(graph.num_nodes))[::-1]


class TestFingerprint:
    def test_stable_under_node_relabeling(self):
        for graph in [
            generators.asymmetric_cycle(7),
            generators.star_graph(4),
            generators.random_connected_graph(9, extra_edges=4, seed=3),
        ]:
            relabeled = graph.relabeled(_reversal_perm(graph))
            assert graph.fingerprint() == relabeled.fingerprint()

    def test_rotated_relabeling(self):
        graph = generators.random_connected_graph(10, extra_edges=3, seed=5)
        perm = [(v + 3) % graph.num_nodes for v in range(graph.num_nodes)]
        assert graph.fingerprint() == graph.relabeled(perm).fingerprint()

    def test_differs_across_structures(self):
        fingerprints = {
            generators.path_graph(6).fingerprint(),
            generators.star_graph(5).fingerprint(),
            generators.cycle_graph(6).fingerprint(),
            generators.asymmetric_cycle(6).fingerprint(),
            generators.complete_graph(4).fingerprint(),
        }
        assert len(fingerprints) == 5

    def test_sensitive_to_port_labeling(self):
        # same underlying 5-cycle, but one node's ports are swapped
        symmetric = generators.cycle_graph(5)
        asymmetric = generators.asymmetric_cycle(5)
        assert symmetric.fingerprint() != asymmetric.fingerprint()

    def test_name_does_not_matter(self):
        a = generators.path_graph(4, name="alpha")
        b = generators.path_graph(4, name="beta")
        assert a.fingerprint() == b.fingerprint()

    def test_deterministic_hex_digest(self):
        graph = generators.path_graph(4)
        digest = graph.fingerprint()
        assert digest == graph.fingerprint()
        assert len(digest) == 64
        int(digest, 16)  # valid hex


class TestRefinementCache:
    def test_miss_then_hit(self):
        cache = RefinementCache()
        graph = generators.asymmetric_cycle(6)
        first = cache.get(graph)
        second = cache.get(graph)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_equal_graphs_share_an_entry(self):
        cache = RefinementCache()
        cache.get(generators.asymmetric_cycle(6))
        cache.get(generators.asymmetric_cycle(6))
        assert cache.hits == 1 and len(cache) == 1

    def test_relabeled_graph_gets_its_own_refinement(self):
        # same fingerprint, different handles: the bucket must not hand back
        # a refinement whose colour lists are indexed for the other graph
        cache = RefinementCache()
        graph = generators.random_connected_graph(8, extra_edges=2, seed=7)
        relabeled = graph.relabeled(_reversal_perm(graph))
        original = cache.get(graph)
        other = cache.get(relabeled)
        assert graph.fingerprint() == relabeled.fingerprint()
        assert cache.misses == 2
        assert original is not other
        # classes correspond under the permutation
        perm = _reversal_perm(graph)
        depth = original.ensure_stable()
        mapped = {tuple(sorted(perm[u] for u in members)) for members in original.classes(depth).values()}
        theirs = {tuple(sorted(members)) for members in other.classes(other.ensure_stable()).values()}
        assert mapped == theirs

    def test_lru_eviction(self):
        cache = RefinementCache(maxsize=2)
        a, b, c = (generators.path_graph(n) for n in (4, 5, 6))
        cache.get(a)
        cache.get(b)
        cache.get(c)  # evicts a
        assert cache.evictions == 1
        cache.get(b)
        assert cache.hits == 1
        cache.get(a)  # rebuilt
        assert cache.misses == 4

    def test_maxsize_bounds_entries_not_fingerprints(self):
        # relabeled copies share a fingerprint but are separate entries, so a
        # bucket of isomorphic graphs must not grow past maxsize
        cache = RefinementCache(maxsize=2)
        graph = generators.random_connected_graph(7, extra_edges=2, seed=9)
        copies = [graph] + [
            graph.relabeled([(v + shift) % graph.num_nodes for v in range(graph.num_nodes)])
            for shift in (1, 2, 3)
        ]
        for copy in copies:
            cache.get(copy)
        assert len(cache) == 2
        assert cache.evictions == 2

    def test_refinement_passes_monotone_across_eviction(self):
        cache = RefinementCache(maxsize=1)
        a = generators.path_graph(5)
        cache.get(a).ensure_stable()
        passes = cache.refinement_passes
        assert passes > 0
        cache.get(generators.path_graph(6))  # evicts a
        assert cache.refinement_passes >= passes

    def test_stats_snapshot(self):
        cache = RefinementCache(maxsize=3)
        cache.get(generators.star_graph(3))
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["currsize"] == 1 and stats["maxsize"] == 3

    def test_clear_resets(self):
        cache = RefinementCache()
        cache.get(generators.star_graph(3))
        cache.clear()
        assert len(cache) == 0 and cache.misses == 0

    def test_shared_refinement_uses_process_cache(self):
        graph = generators.asymmetric_cycle(5)
        assert shared_refinement(graph) is shared_refinement(graph)
        assert refinement_cache.hits >= 1


class TestGraphSpec:
    def test_build_matches_direct_construction(self):
        spec = GraphSpec.make("asymmetric-cycle", n=6)
        assert spec.build() == generators.asymmetric_cycle(6)

    def test_label_is_stable(self):
        spec = GraphSpec.make("random", seed=1, n=8, extra_edges=2)
        assert spec.label == "random(extra_edges=2,n=8,seed=1)"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown graph kind"):
            GraphSpec.make("banana", n=3)

    def test_wrong_parameter_names_raise_value_error(self):
        # grid takes rows/cols, not n: must not leak a TypeError traceback
        with pytest.raises(ValueError, match="invalid parameters for graph kind 'grid'"):
            GraphSpec.make("grid", n=4).build()

    def test_kind_registry_contains_families_and_generators(self):
        kinds = graph_kinds()
        for expected in ("gdk", "udk", "jmuk", "path", "asymmetric-cycle", "hypercube"):
            assert expected in kinds

    def test_sweep_json_roundtrip(self):
        sweep = SweepSpec.make(
            [GraphSpec.make("path", n=5), GraphSpec.make("udk", delta=4, k=1, sigma=[1] * 9)],
            tasks=[Task.SELECTION, Task.PORT_ELECTION],
            max_depth=7,
            profile_depths=(0, 1),
        )
        assert SweepSpec.from_json(sweep.to_json()) == sweep


class TestRunner:
    def _sweep(self):
        return SweepSpec.make(
            [
                GraphSpec.make("three-node-line"),
                GraphSpec.make("asymmetric-cycle", n=5),
                GraphSpec.make("asymmetric-cycle", n=6),
                GraphSpec.make("star", leaves=4),
                GraphSpec.make("random", n=8, extra_edges=3, seed=2),
            ],
            profile_depths=(0,),
        )

    def test_rows_match_direct_computation(self):
        report = ExperimentRunner().run(self._sweep())
        records = report.table.records()
        assert [r["graph"] for r in records] == [spec.label for spec in self._sweep().graphs]
        for spec, record in zip(self._sweep().graphs, records):
            expected = all_election_indices(spec.build())
            for task in Task.ordered():
                assert record[f"psi_{task.value}"] == expected[task]

    def test_infeasible_graph_reports_none(self):
        sweep = SweepSpec.make([GraphSpec.make("cycle", n=6)])
        record = ExperimentRunner().run(sweep).table.records()[0]
        assert record["feasible"] is False
        assert all(record[f"psi_{task.value}"] is None for task in Task.ordered())

    def test_second_run_performs_no_new_refinement_passes(self):
        runner = ExperimentRunner()
        first = runner.run(self._sweep())
        before = refinement_cache.stats()
        second = runner.run(self._sweep())
        after = refinement_cache.stats()
        assert after["refinement_passes"] == before["refinement_passes"]
        assert after["misses"] == before["misses"]
        assert after["hits"] > before["hits"]
        assert second.table == first.table

    def test_parallel_and_serial_tables_are_byte_identical(self):
        sweep = self._sweep()
        serial = ExperimentRunner().run(sweep)
        parallel = ExperimentRunner(workers=2, chunk_size=1).run(sweep)
        assert parallel.workers == 2
        assert parallel.table.to_json() == serial.table.to_json()
        assert parallel.table.to_csv() == serial.table.to_csv()

    def test_run_sweep_wrapper(self):
        report = run_sweep(self._sweep(), workers=1)
        assert len(report.table.rows) == 5

    def test_search_limit_recorded_not_raised(self):
        sweep = SweepSpec.make(
            [GraphSpec.make("random", n=10, extra_edges=8, seed=6)],
            tasks=[Task.COMPLETE_PORT_PATH_ELECTION],
            max_states=1,
        )
        record = ExperimentRunner().run(sweep).table.records()[0]
        assert record["psi_CPPE"] is None
        assert "CPPE" in record["search_limited"]

    def test_evaluate_graph_spec_memoises_indices(self):
        spec = GraphSpec.make("asymmetric-cycle", n=7)
        sweep = SweepSpec.make([spec])
        evaluate_graph_spec(spec, sweep)
        entry = refinement_cache.entry(spec.build())
        assert ("psi", "CPPE", None, 200_000) in entry.memo

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(workers=0)
        with pytest.raises(ValueError):
            ExperimentRunner(workers=2, chunk_size=0)


class TestResultTable:
    def test_json_and_csv_are_deterministic(self):
        sweep = SweepSpec.make([GraphSpec.make("path", n=4)], tasks=[Task.SELECTION])
        table = ExperimentRunner().run(sweep).table
        assert table.to_json() == table.to_json()
        payload = json.loads(table.to_json())
        assert payload["columns"][0] == "graph"
        assert table.to_csv().splitlines()[0].startswith("graph,n,m")

    def test_render_rejects_unknown_format(self):
        sweep = SweepSpec.make([GraphSpec.make("path", n=4)], tasks=[])
        table = ExperimentRunner().run(sweep).table
        with pytest.raises(ValueError, match="unknown format"):
            table.render("yaml")


class TestStableDepthSingleNode:
    def test_single_node_graph_is_stable_at_depth_zero(self):
        from repro.views import ViewRefinement

        graph = PortLabeledGraph([[]], name="singleton")
        refinement = ViewRefinement(graph)
        assert refinement.stable_depth == 0
        assert refinement.ensure_stable() == 0
        assert refinement.passes == 0  # no pass is ever needed
        assert refinement.colors(5) == [0]
        assert refinement.num_classes(3) == 1
        assert refinement.is_discrete()
        assert refinement.unique_nodes(0) == [0]
