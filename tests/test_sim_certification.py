"""End-to-end simulation certification on the scenario corpus.

For sampled feasible corpus graphs and each task Z ∈ {S, PE, PPE, CPPE},
run the universal map-advice algorithm through the *actual* LOCAL-model
engine (:func:`repro.sim.engine.run_synchronous`) and certify, via the
task validators, the full contract of a correct election algorithm:

* exactly one node outputs ``leader``,
* every non-leader's output is (the first port of / the port sequence of /
  the complete port-pair sequence of) a simple path to the leader, and
* the execution halts within exactly ψ_Z(G) rounds -- the paper's
  minimum-time bound, which the universal algorithm must meet, not merely
  approach.

This closes the loop the index computations alone leave open: ψ_Z is
computed from partitions and joint searches, while these tests check that a
real message-passing execution achieving it exists and validates.
"""

from __future__ import annotations

import pytest

from repro.advice.map_advice import universal_scheme
from repro.core import Task, all_election_indices, validate
from repro.core.tasks import output_is_leader
from repro.portgraph import generators


def _certify(graph, task: Task, expected_index: int) -> None:
    outcome = universal_scheme(task).run(graph)
    # halting: the engine ran exactly the rounds the algorithm declared,
    # which must equal the minimum-time index ψ_Z(G)
    assert outcome.rounds == expected_index, (
        f"{graph.name}: {task.value} ran {outcome.rounds} rounds, ψ = {expected_index}"
    )
    leaders = [v for v, value in outcome.outputs.items() if output_is_leader(value)]
    assert len(leaders) == 1, f"{graph.name}: {len(leaders)} leaders"
    validate(task, graph, outcome.outputs).raise_if_invalid()


def test_certifies_every_task_on_feasible_corpus_graphs(feasible_corpus_graphs):
    assert len(feasible_corpus_graphs) >= 5, "corpus sample lost its feasible graphs"
    for graph in feasible_corpus_graphs:
        indices = all_election_indices(graph)
        for task in Task.ordered():
            expected = indices[task]
            assert expected is not None, f"{graph.name}: feasible but ψ_{task.value} is None"
            _certify(graph, task, expected)


def test_certifies_the_papers_three_node_example(three_line):
    indices = all_election_indices(three_line)
    assert indices[Task.SELECTION] == 0
    assert indices[Task.COMPLETE_PORT_PATH_ELECTION] == 1
    for task in Task.ordered():
        _certify(three_line, task, indices[task])


def test_universal_algorithm_rejects_infeasible_graphs(infeasible_graphs):
    for graph in infeasible_graphs:
        with pytest.raises(ValueError):
            universal_scheme(Task.SELECTION).run(graph)


def test_certification_covers_multiple_scenario_families(feasible_corpus_graphs):
    """The feasible sample must span several corpus families, or the
    certification sweep silently degenerates to one family."""
    kinds = {graph.name.split("(")[0].split("-")[0] for graph in feasible_corpus_graphs}
    assert len(kinds) >= 3, f"feasible corpus sample too narrow: {kinds}"
