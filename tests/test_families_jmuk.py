"""Tests for the template J and the class J_{µ,k} (Section 4.1, Parts 4-5).

Building a full member takes a few seconds (2^z = 1024 gadgets, ~132k nodes
at µ=2, k=4), so the member is built once per module and shared.
"""

from __future__ import annotations

import pytest

from repro.algorithms import JmukCppeAlgorithm, jmuk_leader, weaken_outputs
from repro.analysis import lemma_4_10_statement_2
from repro.core import Task, validate
from repro.core.tasks import LEADER
from repro.families import (
    build_jmuk_member,
    build_jmuk_template,
    fact_4_2_class_size,
    fact_4_2_z_bounds,
    gadget_index_bit,
    gadget_size,
    jmuk_border_count,
    jmuk_class_size,
    jmuk_num_gadgets,
)
from repro.portgraph.paths import complete_ports_of_path, shortest_path
from repro.views import ViewRefinement, views_equal_across_graphs

MU, K = 2, 4


@pytest.fixture(scope="module")
def member(corpus_rng_factory):
    z = jmuk_border_count(MU, K)
    rng = corpus_rng_factory("jmuk-member", seed=7)
    y = tuple(rng.randint(0, 1) for _ in range(2 ** (z - 1)))
    return build_jmuk_member(MU, K, y)


@pytest.fixture(scope="module")
def refinement(member):
    return ViewRefinement(member.graph)


class TestFact42:
    def test_counts(self):
        z = jmuk_border_count(MU, K)
        assert z == 10
        assert jmuk_num_gadgets(MU, K) == 1024
        assert jmuk_class_size(MU, K) == 2**512
        assert fact_4_2_class_size(MU, K) == 2**512

    def test_z_bounds(self):
        lower, z, upper = fact_4_2_z_bounds(MU, K)
        assert lower <= z <= upper
        lower, z, upper = fact_4_2_z_bounds(3, 5)
        assert lower <= z <= upper

    def test_bit_helper(self):
        assert gadget_index_bit(0b1010000000, 1, 10) == 1
        assert gadget_index_bit(0b1010000000, 2, 10) == 0
        assert gadget_index_bit(5, 10, 10) == 1
        with pytest.raises(ValueError):
            gadget_index_bit(5, 0, 10)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            jmuk_border_count(2, 3)
        with pytest.raises(ValueError):
            build_jmuk_member(MU, K, (0, 1))


@pytest.mark.slow
class TestMemberStructure:
    def test_size(self, member):
        assert member.num_gadgets == 1024
        assert member.graph.num_nodes == 1024 * gadget_size(MU, K)

    def test_rho_degrees(self, member):
        graph = member.graph
        for i in (0, 1, 511, 512, 1023):
            assert graph.degree(member.rho(i)) == 4 * MU

    def test_chain_encoding_matches_bits(self, member):
        # W_{i,T} = i and W_{i,B} = i+1 (0 for the last gadget): check via degrees.
        algorithm = JmukCppeAlgorithm(member)
        for i in (0, 1, 2, 37, 511, 512, 1023):
            assert algorithm.component_code(i, "T") == i
            assert algorithm.component_code(i, "L") == i
            expected_next = (i + 1) if i + 1 < member.num_gadgets else 0
            assert algorithm.component_code(i, "B") == expected_next
            assert algorithm.component_code(i, "R") == expected_next

    def test_part5_swaps_applied(self, member):
        graph = member.graph
        for i, bit in enumerate(member.y):
            rho_low = member.rho(i)
            # when y_i = 1, port 2µ of ρ_i leads into H_B instead of H_R
            neighbour = graph.neighbor(rho_low, 2 * MU)
            in_r = neighbour in set(member.component_nodes(i, "R"))
            in_b = neighbour in set(member.component_nodes(i, "B"))
            if bit:
                assert in_b and not in_r
            else:
                assert in_r and not in_b
            if i > 20:  # spot-checking the prefix is enough
                break


@pytest.mark.slow
class TestLemmas46and47:
    def test_lemma_4_6_no_unique_views_at_depth_k_minus_1(self, member, refinement):
        assert refinement.num_classes(K - 1) < member.graph.num_nodes
        assert not refinement.unique_nodes(K - 1)

    def test_lemma_4_7_and_4_9_selection_index_is_k(self, member, refinement):
        assert refinement.first_depth_with_unique_node() == K

    def test_proposition_4_4_rho_views_equal_at_depth_k_minus_1(self, member, refinement):
        rhos = member.rho_nodes()
        sample = [rhos[0], rhos[1], rhos[100], rhos[511], rhos[512], rhos[1023]]
        for v in sample[1:]:
            assert refinement.views_equal(sample[0], v, K - 1)


@pytest.mark.slow
class TestLemma48Algorithm:
    def test_cppe_outputs_validate_on_sampled_nodes(self, member, corpus_rng_factory):
        algorithm = JmukCppeAlgorithm(member)
        rng = corpus_rng_factory("jmuk-samples", seed=3)
        sampled_gadgets = [0, 1, 2, 3, 255, 256, 511, 512, 513, 1022, 1023]
        nodes = []
        for gadget in sampled_gadgets:
            nodes.extend(rng.sample(member.gadget_nodes(gadget), 6))
        nodes.append(member.rho(0))
        nodes.extend(member.rho(i) for i in (1, 512, 1023))
        outputs = {v: algorithm.output(v) for v in nodes}

        leader = jmuk_leader(member)
        assert outputs[leader] == LEADER
        graph = member.graph
        from repro.portgraph.paths import is_simple_node_sequence, path_from_complete_ports

        for v, value in outputs.items():
            if v == leader:
                continue
            path = path_from_complete_ports(graph, v, value)
            assert path is not None, f"node {v}: output cannot be followed"
            assert is_simple_node_sequence(path), f"node {v}: path is not simple"
            assert path[-1] == leader, f"node {v}: path does not end at the leader"

    def test_outputs_use_only_k_rounds_of_information(self, member):
        # the decision of a node only needs its radius-k ball: the algorithm
        # asserts this internally; here we re-check one node explicitly.
        algorithm = JmukCppeAlgorithm(member)
        node = member.border_node(17, "T", 1, 1)
        value = algorithm.output(node)
        # the first 2k entries of the output describe the local part of the path
        local_prefix = value[: 2 * K]
        assert len(local_prefix) <= 2 * K

    def test_derived_weaker_tasks_validate_on_a_small_prefix(self, member):
        # Take the CPPE outputs of all nodes of gadgets 0..2 plus the chain of
        # ρ nodes, restrict the graph to... (not possible: paths leave the
        # prefix) -- instead check the PPE/PE/Selection derivations directly
        # on the sampled outputs: derived paths are prefixes of valid paths.
        algorithm = JmukCppeAlgorithm(member)
        nodes = member.gadget_nodes(1)[:10]
        cppe = {v: algorithm.output(v) for v in nodes}
        ppe = weaken_outputs(Task.COMPLETE_PORT_PATH_ELECTION, cppe, Task.PORT_PATH_ELECTION)
        from repro.portgraph.paths import follow_ports

        leader = jmuk_leader(member)
        for v, ports in ppe.items():
            path = follow_ports(member.graph, v, ports)
            assert path is not None and path[-1] == leader


@pytest.mark.slow
class TestLemma410:
    def test_statement_1_left_edge_views_agree_across_members(self, member):
        other_y = tuple(1 - bit for bit in member.y)
        other = build_jmuk_member(MU, K, other_y)
        node_a = member.border_node(0, "L", 1, 1)
        node_b = other.border_node(0, "L", 1, 1)
        assert views_equal_across_graphs(member.graph, node_a, other.graph, node_b, K)

    def test_statement_2_port_sequences_cannot_reach_the_right_half_twice(self, member):
        # Build a second member differing in bit 0 and take, as the fixed port
        # sequence, the outgoing ports of an actual simple path from w_{1,1} of
        # H_L of gadget 0 to a right-half ρ in the first member.
        other_y = (1 - member.y[0],) + member.y[1:]
        other = build_jmuk_member(MU, K, other_y)
        start = member.border_node(0, "L", 1, 1)
        target = member.rho(member.num_gadgets // 2 + 3)
        path = shortest_path(member.graph, start, target)
        assert path is not None
        from repro.portgraph.paths import outgoing_ports_of_path

        sequence = outgoing_ports_of_path(member.graph, path)
        assert lemma_4_10_statement_2(member, other, sequence)
        assert lemma_4_10_statement_2(other, member, sequence)
