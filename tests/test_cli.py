"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_indices_command(self, capsys):
        assert main(["indices", "--generator", "asymmetric-cycle", "--size", "6"]) == 0
        out = capsys.readouterr().out
        assert "ψ_Z(G)" in out
        assert "Selection" in out
        assert "Complete Port Path Election" in out

    def test_indices_on_infeasible_graph(self, capsys):
        assert main(["indices", "--generator", "cycle", "--size", "6"]) == 0
        out = capsys.readouterr().out
        assert "None" in out

    def test_family_gdk(self, capsys):
        assert main(["family", "gdk", "--delta", "4", "--k", "1", "--index", "2"]) == 0
        out = capsys.readouterr().out
        assert "selection index" in out

    def test_family_udk_template(self, capsys):
        assert main(["family", "udk", "--delta", "4", "--k", "1", "--template"]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out

    def test_family_jmuk_requires_k_at_least_4(self, capsys):
        assert main(["family", "jmuk", "--mu", "2", "--k", "2"]) == 2

    def test_counts_command(self, capsys):
        assert main(["counts", "--delta", "5", "--k", "2", "--mu", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gdk_class_size"] == str(4**12)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
