"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_indices_command(self, capsys):
        assert main(["indices", "--generator", "asymmetric-cycle", "--size", "6"]) == 0
        out = capsys.readouterr().out
        assert "ψ_Z(G)" in out
        assert "Selection" in out
        assert "Complete Port Path Election" in out

    def test_indices_on_infeasible_graph(self, capsys):
        assert main(["indices", "--generator", "cycle", "--size", "6"]) == 0
        out = capsys.readouterr().out
        assert "None" in out

    def test_family_gdk(self, capsys):
        assert main(["family", "gdk", "--delta", "4", "--k", "1", "--index", "2"]) == 0
        out = capsys.readouterr().out
        assert "selection index" in out

    def test_family_udk_template(self, capsys):
        assert main(["family", "udk", "--delta", "4", "--k", "1", "--template"]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out

    def test_family_jmuk_requires_k_at_least_4(self, capsys):
        assert main(["family", "jmuk", "--mu", "2", "--k", "2"]) == 2

    def test_counts_command(self, capsys):
        assert main(["counts", "--delta", "5", "--k", "2", "--mu", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gdk_class_size"] == str(4**12)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBenchCommand:
    def test_generator_sweep_text(self, capsys):
        assert main(["bench", "--generator", "asymmetric-cycle", "--sizes", "5,6"]) == 0
        out = capsys.readouterr().out
        assert "asymmetric-cycle(n=5)" in out
        assert "psi_CPPE" in out

    def test_graph_option_and_json(self, capsys):
        assert main([
            "bench", "--graph", "gdk:delta=4,k=1,index=2", "--tasks", "S", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "psi_S" in payload["columns"]
        assert payload["rows"][0][payload["columns"].index("psi_S")] == 1

    def test_repeat_with_cache_stats(self, capsys):
        assert main([
            "bench", "--generator", "star", "--sizes", "3,4",
            "--repeat", "2", "--cache-stats", "--format", "csv",
        ]) == 0
        captured = capsys.readouterr()
        assert "new refinement passes=0" in captured.err.splitlines()[-1]
        assert captured.out.startswith("graph,")

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "table.csv"
        assert main([
            "bench", "--generator", "path", "--sizes", "4", "--tasks", "S,PE",
            "--format", "csv", "--output", str(target),
        ]) == 0
        assert target.read_text().startswith("graph,n,m")

    def test_spec_file(self, tmp_path, capsys):
        from repro.runner import GraphSpec, SweepSpec

        spec_path = tmp_path / "sweep.json"
        sweep = SweepSpec.make([GraphSpec.make("three-node-line")], tasks=[])
        spec_path.write_text(sweep.to_json())
        assert main(["bench", "--spec", str(spec_path), "--format", "csv"]) == 0
        assert "three-node-line" in capsys.readouterr().out

    def test_no_graphs_is_an_error(self, capsys):
        assert main(["bench"]) == 2
        assert "no graphs to sweep" in capsys.readouterr().err

    def test_malformed_graph_option(self, capsys):
        assert main(["bench", "--graph", "path:oops"]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_wrong_parameter_name_is_a_clean_error(self, capsys):
        assert main(["bench", "--graph", "grid:n=4"]) == 2
        assert "invalid parameters for graph kind 'grid'" in capsys.readouterr().err

    def test_out_of_range_family_index_is_a_clean_error(self, capsys):
        assert main(["bench", "--graph", "gdk:delta=4,k=1,index=99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("bench: ")
