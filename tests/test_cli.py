"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_indices_command(self, capsys):
        assert main(["indices", "--generator", "asymmetric-cycle", "--size", "6"]) == 0
        out = capsys.readouterr().out
        assert "ψ_Z(G)" in out
        assert "Selection" in out
        assert "Complete Port Path Election" in out

    def test_indices_on_infeasible_graph(self, capsys):
        assert main(["indices", "--generator", "cycle", "--size", "6"]) == 0
        out = capsys.readouterr().out
        assert "None" in out

    def test_family_gdk(self, capsys):
        assert main(["family", "gdk", "--delta", "4", "--k", "1", "--index", "2"]) == 0
        out = capsys.readouterr().out
        assert "selection index" in out

    def test_family_udk_template(self, capsys):
        assert main(["family", "udk", "--delta", "4", "--k", "1", "--template"]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out

    def test_family_jmuk_requires_k_at_least_4(self, capsys):
        assert main(["family", "jmuk", "--mu", "2", "--k", "2"]) == 2

    def test_counts_command(self, capsys):
        assert main(["counts", "--delta", "5", "--k", "2", "--mu", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gdk_class_size"] == str(4**12)

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestBenchCommand:
    def test_generator_sweep_text(self, capsys):
        assert main(["bench", "--generator", "asymmetric-cycle", "--sizes", "5,6"]) == 0
        out = capsys.readouterr().out
        assert "asymmetric-cycle(n=5)" in out
        assert "psi_CPPE" in out

    def test_graph_option_and_json(self, capsys):
        assert main([
            "bench", "--graph", "gdk:delta=4,k=1,index=2", "--tasks", "S", "--format", "json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "psi_S" in payload["columns"]
        assert payload["rows"][0][payload["columns"].index("psi_S")] == 1

    def test_repeat_with_cache_stats(self, capsys):
        assert main([
            "bench", "--generator", "star", "--sizes", "3,4",
            "--repeat", "2", "--cache-stats", "--format", "csv",
        ]) == 0
        captured = capsys.readouterr()
        assert "new refinement passes=0" in captured.err.splitlines()[-1]
        assert captured.out.startswith("graph,")

    def test_output_file(self, tmp_path, capsys):
        target = tmp_path / "table.csv"
        assert main([
            "bench", "--generator", "path", "--sizes", "4", "--tasks", "S,PE",
            "--format", "csv", "--output", str(target),
        ]) == 0
        assert target.read_text().startswith("graph,n,m")

    def test_spec_file(self, tmp_path, capsys):
        from repro.runner import GraphSpec, SweepSpec

        spec_path = tmp_path / "sweep.json"
        sweep = SweepSpec.make([GraphSpec.make("three-node-line")], tasks=[])
        spec_path.write_text(sweep.to_json())
        assert main(["bench", "--spec", str(spec_path), "--format", "csv"]) == 0
        assert "three-node-line" in capsys.readouterr().out

    def test_no_graphs_is_an_error(self, capsys):
        assert main(["bench"]) == 2
        assert "no graphs to sweep" in capsys.readouterr().err

    def test_malformed_graph_option(self, capsys):
        assert main(["bench", "--graph", "path:oops"]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_wrong_parameter_name_is_a_clean_error(self, capsys):
        assert main(["bench", "--graph", "grid:n=4"]) == 2
        assert "invalid parameters for graph kind 'grid'" in capsys.readouterr().err

    def test_out_of_range_family_index_is_a_clean_error(self, capsys):
        assert main(["bench", "--graph", "gdk:delta=4,k=1,index=99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("bench: ")

    def test_profile_prints_stage_table(self, capsys):
        assert main([
            "bench", "--generator", "star", "--sizes", "3,4",
            "--tasks", "S", "--format", "csv", "--profile",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out.startswith("graph,"), "the table itself is unchanged"
        assert "bench --profile: trace bench-" in captured.err
        assert "evaluate_graph" in captured.err
        assert "total_ms" in captured.err


class TestSweepTraceOut:
    def test_trace_out_writes_jsonl_spans(self, tmp_path, capsys):
        trace_file = tmp_path / "spans.jsonl"
        assert main([
            "sweep", "--corpus", "mixed", "--count", "3", "--seed", "1",
            "--tasks", "S", "--output", str(tmp_path / "out.ndjson"),
            "--trace-out", str(trace_file),
        ]) == 0
        err = capsys.readouterr().err
        assert "appended trace sweep-" in err
        spans = [json.loads(line) for line in trace_file.read_text().splitlines()]
        names = {span["name"] for span in spans}
        assert "evaluate_graph" in names and "sweep" in names
        trace_ids = {span["trace_id"] for span in spans}
        assert len(trace_ids) == 1, "one sweep, one trace"

    def test_trace_out_refuses_remote_mode(self, capsys):
        assert main([
            "sweep", "--url", "http://localhost:1", "--trace-out", "/tmp/x.jsonl",
        ]) == 2
        assert "--trace-out" in capsys.readouterr().err


class TestServeCli:
    def test_serve_port_file_metrics_and_trace_roundtrip(self, tmp_path):
        """``serve --port 0 --port-file``: the file appears only once the
        listener is up, carries the real bound port, and the server answers
        ``/healthz``, ``/metrics`` and ``/stats`` (trace echoed) through it —
        the exact contract the CI smoke scripts against."""
        import json as json_module
        import os
        import subprocess
        import sys
        import time
        import urllib.request

        port_file = tmp_path / "serve.port"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--port-file", str(port_file), "--workers", "1",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 30
            while time.time() < deadline and not port_file.exists():
                assert process.poll() is None, "serve exited before binding"
                time.sleep(0.05)
            port = int(port_file.read_text().strip())
            base = f"http://127.0.0.1:{port}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
                health = json_module.loads(response.read())
            assert health["status"] == "ok"
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as response:
                assert response.headers["Content-Type"].startswith("text/plain")
                scrape = response.read().decode("utf-8")
            assert "# TYPE repro_requests_total counter" in scrape
            assert "# TYPE repro_request_seconds histogram" in scrape
            with urllib.request.urlopen(f"{base}/stats", timeout=10) as response:
                stats = json_module.loads(response.read())
            assert health["trace_id"] in {
                entry["trace_id"] for entry in stats["traces"]["recent"]
            }
        finally:
            process.terminate()
            process.wait(timeout=10)
