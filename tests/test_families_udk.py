"""Tests for the class U_{Δ,k} (Section 3.1): Fact 3.1, Lemmas 3.6/3.8/3.9, Theorem 3.11 set-up."""

from __future__ import annotations

import pytest

from repro.algorithms import pe_to_selection, udk_leader, udk_port_election_outputs
from repro.analysis import only_unique_view_nodes
from repro.core import Task, port_election_index, selection_index, validate
from repro.families import (
    build_udk_member,
    build_udk_template,
    fact_3_1_class_size,
    udk_class_size,
    udk_tree_count,
)
from repro.views import ViewRefinement, views_equal_across_graphs


DELTA, K = 4, 1


@pytest.fixture(scope="module")
def template():
    return build_udk_template(DELTA, K)


@pytest.fixture(scope="module")
def member():
    y = udk_tree_count(DELTA, K)
    sigma = tuple((j % (DELTA - 1)) + 1 for j in range(y))
    return build_udk_member(DELTA, K, sigma)


class TestFact31:
    @pytest.mark.parametrize(
        "delta,k,expected",
        [(4, 1, 3**9), (5, 1, 4**64), (4, 2, 3 ** (3**6))],
    )
    def test_class_size_formula(self, delta, k, expected):
        assert udk_class_size(delta, k) == expected
        assert fact_3_1_class_size(delta, k) == expected

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            udk_tree_count(3, 1)
        with pytest.raises(ValueError):
            udk_class_size(4, 0)


class TestTemplateStructure:
    def test_degrees_identify_node_roles(self, template):
        graph = template.graph
        cycle_roots = set(template.cycle_root_nodes())
        hub_roots = set(template.hub_root_nodes())
        assert all(graph.degree(v) == DELTA + 2 for v in cycle_roots)
        assert all(graph.degree(v) == 2 * DELTA - 1 for v in hub_roots)
        # nobody else has those degrees (Lemma 3.8 / Claim 1 rely on this)
        for v in graph.nodes():
            if graph.degree(v) == DELTA + 2:
                assert v in cycle_roots
            if graph.degree(v) == 2 * DELTA - 1:
                assert v in hub_roots

    def test_counts(self, template):
        y = udk_tree_count(DELTA, K)
        assert len(template.cycle_roots) == 2 * y
        assert len(template.hub_roots) == 2 * y
        assert len(template.connector_paths) == 2 * y
        assert all(len(p) == K for p in template.connector_paths.values())
        assert all(len(paths) == DELTA - 1 for paths in template.pendant_paths.values())

    def test_member_swaps_ports_at_hub_roots(self, member, template):
        y = udk_tree_count(DELTA, K)
        for j in range(1, y + 1):
            s = member.sigma[j - 1]
            hub = member.hub_roots[(j, 1)]
            connector_first = member.connector_paths[(j, 1)][0]
            # after the swap, the connector hangs off port Δ-1+s instead of Δ-1
            assert member.graph.port_to(hub, connector_first) == DELTA - 1 + s

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            build_udk_member(DELTA, K, (1, 2))
        y = udk_tree_count(DELTA, K)
        with pytest.raises(ValueError):
            build_udk_member(DELTA, K, tuple(DELTA for _ in range(y)))


class TestElectionIndices:
    def test_lemma_3_6_no_unique_view_below_k(self, member):
        refinement = ViewRefinement(member.graph)
        assert not refinement.unique_nodes(K - 1)

    def test_lemma_3_8_cycle_roots_unique_at_k(self, member):
        unique = set(only_unique_view_nodes(member.graph, K))
        assert unique == set(member.cycle_root_nodes())

    def test_lemma_3_9_selection_and_pe_index_equal_k(self, member):
        refinement = ViewRefinement(member.graph)
        assert selection_index(member.graph, refinement=refinement) == K
        assert port_election_index(member.graph, refinement=refinement) == K

    def test_template_indices_equal_k(self, template):
        refinement = ViewRefinement(template.graph)
        assert selection_index(template.graph, refinement=refinement) == K
        assert port_election_index(template.graph, refinement=refinement) == K


class TestLemma39Algorithm:
    def test_pe_outputs_validate_on_template(self, template):
        outputs = udk_port_election_outputs(template)
        result = validate(Task.PORT_ELECTION, template.graph, outputs)
        assert result.ok, result.errors[:3]
        assert result.leader == udk_leader(template)

    def test_pe_outputs_validate_on_member(self, member):
        outputs = udk_port_election_outputs(member)
        result = validate(Task.PORT_ELECTION, member.graph, outputs)
        assert result.ok, result.errors[:3]

    def test_derived_selection_also_validates(self, member):
        outputs = udk_port_election_outputs(member)
        selection = pe_to_selection(outputs)
        assert validate(Task.SELECTION, member.graph, selection).ok

    def test_hub_root_output_depends_on_sigma(self, member, template):
        # The hub-root outputs in a member are the swapped ports Δ-1+s_j,
        # while in the template they are Δ-1: this is exactly the per-graph
        # information Theorem 3.11 shows must be paid for in advice.
        member_outputs = udk_port_election_outputs(member)
        template_outputs = udk_port_election_outputs(template)
        y = udk_tree_count(DELTA, K)
        for j in range(1, y + 1):
            s = member.sigma[j - 1]
            assert member_outputs[member.hub_roots[(j, 1)]] == DELTA - 1 + s
            assert template_outputs[template.hub_roots[(j, 1)]] == DELTA - 1


class TestTheorem311Indistinguishability:
    def test_hub_roots_have_same_view_across_members(self, member, template):
        # The view of r_{j,1,1} at depth k is the same in every member (and in
        # the template): the swap happens at the hub root itself but only
        # reorders subtrees that look identical at this depth.
        y = udk_tree_count(DELTA, K)
        for j in (1, y // 2 + 1, y):
            assert views_equal_across_graphs(
                member.graph,
                member.hub_roots[(j, 1)],
                template.graph,
                template.hub_roots[(j, 1)],
                K,
            )

    def test_claim_1_hub_views_unique_per_index(self, member):
        # B^k(r_{j,1,1}) = B^k(r_{j,1,2}) and the views differ across j.
        from repro.views import augmented_view, view_key

        y = udk_tree_count(DELTA, K)
        keys = {}
        for j in range(1, y + 1):
            key1 = view_key(augmented_view(member.graph, member.hub_roots[(j, 1)], K))
            key2 = view_key(augmented_view(member.graph, member.hub_roots[(j, 2)], K))
            assert key1 == key2
            keys[j] = key1
        assert len(set(keys.values())) == y
