"""Unit tests for :mod:`repro.obs`: spans, context propagation, the bounded
recorder rings, trees, profiles and the JSONL sink.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    MAX_TAGS_PER_SPAN,
    SPAN_SCHEMA_KEYS,
    SpanRecorder,
    activate,
    current_context,
    new_trace_id,
    record_span,
    set_tracing,
    span,
    tracing_enabled,
)


@pytest.fixture()
def recorder() -> SpanRecorder:
    return SpanRecorder()


# --------------------------------------------------------------------------- #
# span production and context propagation
# --------------------------------------------------------------------------- #
class TestSpan:
    def test_root_span_records_full_schema(self, recorder):
        with span("http_request", trace_id="t-1", recorder=recorder) as live:
            assert live.recording
            live.set_tag("status", 200)
        spans = recorder.trace("t-1")
        assert len(spans) == 1
        assert tuple(spans[0].keys()) == SPAN_SCHEMA_KEYS
        assert spans[0]["name"] == "http_request"
        assert spans[0]["parent_id"] is None
        assert spans[0]["tags"] == {"status": 200}
        assert spans[0]["duration_ms"] >= 0.0

    def test_nested_span_links_to_parent(self, recorder):
        with span("outer", trace_id="t-2", recorder=recorder) as outer:
            with span("inner", recorder=recorder):
                pass
        by_name = {s["name"]: s for s in recorder.trace("t-2")}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner"]["trace_id"] == "t-2"

    def test_span_without_context_is_noop(self, recorder):
        assert current_context() is None
        with span("orphan", recorder=recorder) as live:
            assert not live.recording
            live.set_tag("ignored", 1)  # must not raise
        assert recorder.stats()["spans"] == 0

    def test_set_tracing_kill_switch(self, recorder):
        assert tracing_enabled()
        prior = set_tracing(False)
        try:
            with span("off", trace_id="t-3", recorder=recorder) as live:
                assert not live.recording
            record_span(
                "manual", start_s=0.0, duration_ms=1.0,
                context=("t-3", None), recorder=recorder,
            )
            assert recorder.stats()["spans"] == 0
        finally:
            set_tracing(prior)

    def test_tag_cap_is_enforced(self, recorder):
        with span("tagged", trace_id="t-4", recorder=recorder) as live:
            for index in range(MAX_TAGS_PER_SPAN + 5):
                live.set_tag(f"k{index}", index)
            live.set_tag("k0", "updated")  # existing keys may still be updated
        tags = recorder.trace("t-4")[0]["tags"]
        assert len(tags) == MAX_TAGS_PER_SPAN
        assert tags["k0"] == "updated"

    def test_record_span_manual_timing(self, recorder):
        record_span(
            "queue_wait",
            start_s=123.0,
            duration_ms=4.5,
            context=("t-5", "abc.1"),
            tags={"shard": 2},
            recorder=recorder,
        )
        (rec,) = recorder.trace("t-5")
        assert tuple(rec.keys()) == SPAN_SCHEMA_KEYS
        assert rec["parent_id"] == "abc.1"
        assert rec["duration_ms"] == 4.5
        assert rec["tags"] == {"shard": 2}

    def test_activate_adopts_context_in_foreign_thread(self, recorder):
        captured = {}

        def worker(context):
            with activate(context):
                with span("threaded", recorder=recorder):
                    pass
            captured["after"] = current_context()

        with span("parent", trace_id="t-6", recorder=recorder):
            context = current_context()
            thread = threading.Thread(target=worker, args=(context,))
            thread.start()
            thread.join()
        by_name = {s["name"]: s for s in recorder.trace("t-6")}
        assert by_name["threaded"]["parent_id"] == by_name["parent"]["span_id"]
        assert captured["after"] is None, "activate() must reset on exit"

    def test_new_trace_id_has_prefix_and_is_unique(self):
        first, second = new_trace_id("bench"), new_trace_id("bench")
        assert first.startswith("bench-") and first != second


# --------------------------------------------------------------------------- #
# recorder bounds, trees, profiles, sink
# --------------------------------------------------------------------------- #
class TestRecorder:
    def _record(self, recorder, trace_id, name="stage", parent=None):
        record_span(
            name, start_s=1.0, duration_ms=1.0,
            context=(trace_id, parent), recorder=recorder,
        )

    def test_trace_ring_evicts_oldest_and_counts_drops(self):
        recorder = SpanRecorder(max_traces=2, max_spans_per_trace=10)
        for trace_id in ("t-a", "t-b", "t-c"):
            self._record(recorder, trace_id)
        stats = recorder.stats()
        assert stats["traces"] == 2
        assert recorder.trace("t-a") is None, "oldest trace evicted"
        assert stats["dropped"] == 1

    def test_per_trace_span_cap_drops_not_grows(self):
        recorder = SpanRecorder(max_traces=4, max_spans_per_trace=3)
        for _ in range(10):
            self._record(recorder, "t-big")
        stats = recorder.stats()
        assert len(recorder.trace("t-big")) == 3
        assert stats["dropped"] == 7

    def test_tree_orphan_spans_become_roots(self, recorder):
        self._record(recorder, "t-t", name="shard_stage", parent="gone.99")
        with span("root", trace_id="t-t", recorder=recorder):
            with span("child", recorder=recorder):
                pass
        roots = recorder.tree("t-t")
        names = {node["name"] for node in roots}
        assert names == {"shard_stage", "root"}, "dropped parents must not hide spans"
        root = next(node for node in roots if node["name"] == "root")
        assert [child["name"] for child in root["children"]] == ["child"]

    def test_tree_unknown_trace_is_none(self, recorder):
        assert recorder.tree("nope") is None

    def test_profile_aggregates_by_name(self, recorder):
        for duration in (1.0, 3.0):
            record_span(
                "compute", start_s=0.0, duration_ms=duration,
                context=("t-p", None), recorder=recorder,
            )
        self._record(recorder, "t-p", name="parse")
        rows = {row["name"]: row for row in recorder.profile("t-p")}
        assert rows["compute"]["count"] == 2
        assert rows["compute"]["total_ms"] == 4.0
        assert rows["compute"]["max_ms"] == 3.0
        assert rows["parse"]["count"] == 1

    def test_pop_trace_moves_spans_out(self, recorder):
        self._record(recorder, "t-o")
        shipped = recorder.pop_trace("t-o")
        assert len(shipped) == 1
        assert recorder.trace("t-o") is None
        other = SpanRecorder()
        other.absorb(shipped)
        assert len(other.trace("t-o")) == 1

    def test_sink_tees_jsonl(self, recorder, tmp_path):
        sink = tmp_path / "spans.jsonl"
        recorder.attach_sink(str(sink))
        try:
            self._record(recorder, "t-s")
        finally:
            recorder.attach_sink(None)
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert len(lines) == 1
        assert tuple(sorted(lines[0].keys())) == tuple(sorted(SPAN_SCHEMA_KEYS))
        assert recorder.sink_path is None

    def test_bounds_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanRecorder(max_traces=0)

    def test_clear_resets(self, recorder):
        self._record(recorder, "t-c")
        recorder.clear()
        assert recorder.stats()["spans"] == 0
