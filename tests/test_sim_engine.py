"""Unit and integration tests for the LOCAL-model simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.portgraph import generators
from repro.sim import (
    FunctionalViewAlgorithm,
    NodeAlgorithm,
    ViewBasedAlgorithm,
    gather_views,
    run_synchronous,
)
from repro.views import augmented_view


class _EchoDegree(NodeAlgorithm):
    """Trivial non-communicating algorithm used to exercise the engine API."""

    def __init__(self, rounds: int = 0) -> None:
        super().__init__()
        self._rounds = rounds

    def rounds_needed(self):
        return self._rounds

    def messages_to_send(self, round_number):
        return {}

    def receive(self, round_number, messages):
        self.last_messages = messages

    def output(self):
        return self.degree


class TestEngineBasics:
    def test_zero_round_execution(self):
        graph = generators.star_graph(3)
        result = run_synchronous(graph, _EchoDegree, rounds=0)
        assert result.outputs == {0: 3, 1: 1, 2: 1, 3: 1}
        assert result.trace.rounds == 0
        assert result.trace.total_messages == 0

    def test_rounds_needed_resolution(self):
        graph = generators.path_graph(3)
        result = run_synchronous(graph, lambda: _EchoDegree(rounds=2))
        assert result.trace.rounds == 2

    def test_missing_round_budget_rejected(self):
        graph = generators.path_graph(3)

        class NoBudget(_EchoDegree):
            def rounds_needed(self):
                return None

        with pytest.raises(ValueError):
            run_synchronous(graph, NoBudget)

    def test_negative_rounds_rejected(self):
        graph = generators.path_graph(3)
        with pytest.raises(ValueError):
            run_synchronous(graph, _EchoDegree, rounds=-1)

    def test_message_counting(self):
        graph = generators.cycle_graph(5)
        result = run_synchronous(graph, lambda: ViewCollector(2), rounds=2)
        # every node sends on both ports in both rounds
        assert result.trace.total_messages == 2 * 2 * 5

    def test_advice_is_passed_to_every_node(self):
        graph = generators.path_graph(3)

        class AdviceEcho(_EchoDegree):
            def output(self):
                return self.advice

        result = run_synchronous(graph, AdviceEcho, rounds=0, advice="1011")
        assert set(result.outputs.values()) == {"1011"}
        assert result.trace.advice_bits == 4


class ViewCollector(ViewBasedAlgorithm):
    def decide(self, view):
        return view


class TestSimulatorHonesty:
    """The distributed view after r rounds must equal B^r computed from the graph."""

    @pytest.mark.parametrize("rounds", [0, 1, 2, 3])
    def test_gathered_views_match_direct_computation(self, rounds):
        graph = generators.random_connected_graph(10, extra_edges=5, seed=21)
        gathered = gather_views(graph, rounds)
        for v in graph.nodes():
            assert gathered[v] == augmented_view(graph, v, rounds), f"node {v}, r={rounds}"

    @given(
        n=st.integers(min_value=3, max_value=10),
        extra=st.integers(min_value=0, max_value=5),
        seed=st.integers(min_value=0, max_value=200),
        rounds=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_views_match(self, n, extra, seed, rounds):
        graph = generators.random_connected_graph(n, extra_edges=extra, seed=seed)
        gathered = gather_views(graph, rounds)
        sample = list(graph.nodes())[:5]
        for v in sample:
            assert gathered[v] == augmented_view(graph, v, rounds)

    def test_functional_view_algorithm(self):
        graph = generators.star_graph(4)
        result = run_synchronous(
            graph,
            lambda: FunctionalViewAlgorithm(1, lambda view, advice: (view.degree, advice)),
            advice="01",
        )
        assert result.outputs[0] == (4, "01")
        assert result.outputs[1] == (1, "01")
