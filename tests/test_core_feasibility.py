"""Unit tests for the feasibility characterisation (Yamashita-Kameda)."""

from __future__ import annotations

from repro.core import infeasibility_witness, is_feasible, symmetry_classes
from repro.portgraph import generators
from repro.views import ViewRefinement


class TestFeasibility:
    def test_two_node_graph_infeasible(self):
        assert not is_feasible(generators.two_node_graph())

    def test_symmetric_cycles_infeasible(self):
        for n in (3, 4, 5, 6, 8):
            assert not is_feasible(generators.cycle_graph(n))

    def test_rotational_complete_graph_infeasible(self):
        assert not is_feasible(generators.rotational_complete_graph(4))

    def test_canonically_labeled_complete_graph_is_feasible(self):
        # With the canonical (handle-order) labeling the clique is asymmetric
        # enough for all views to differ -- port numbers matter, not topology.
        assert is_feasible(generators.complete_graph(4))

    def test_small_feasible_examples(self, small_feasible_graphs):
        for graph in small_feasible_graphs:
            assert is_feasible(graph), graph.name

    def test_refinement_can_be_shared(self):
        graph = generators.path_graph(5)
        refinement = ViewRefinement(graph)
        assert is_feasible(graph, refinement=refinement)
        assert infeasibility_witness(graph, refinement=refinement) is None

    def test_infeasibility_witness_is_a_real_symmetry_class(self):
        graph = generators.cycle_graph(6)
        witness = infeasibility_witness(graph)
        assert witness is not None
        assert len(witness) == 6  # all nodes of the symmetric cycle share one view

    def test_witness_none_for_feasible(self, small_feasible_graphs):
        for graph in small_feasible_graphs:
            assert infeasibility_witness(graph) is None

    def test_symmetry_classes_partition_nodes(self):
        graph = generators.cycle_graph(4)
        classes = symmetry_classes(graph)
        members = sorted(v for nodes in classes.values() for v in nodes)
        assert members == list(graph.nodes())

    def test_symmetry_classes_have_equal_size(self, small_feasible_graphs, infeasible_graphs):
        # Classic fact used implicitly by the paper: all classes of equal
        # infinite views have the same cardinality.
        for graph in list(small_feasible_graphs) + list(infeasible_graphs):
            classes = symmetry_classes(graph)
            sizes = {len(nodes) for nodes in classes.values()}
            assert len(sizes) == 1, f"{graph.name}: class sizes {sizes}"
