"""Regression tests for the fixpoint-precise ``fingerprint()`` and the shallow ``cache_key()``.

The original fingerprint folded a *fixed* 3 rounds of port-aware colour
refinement.  That aliases structurally different graphs whose refinements
only diverge at depth >= 4.  The colliding pair constructed here is explicit:
two leaf-decorated cycles whose leaf positions follow two *distinct* binary
de Bruijn sequences of order 7 (length 128).  Every 7-bit window occurs
exactly once in each sequence, so the multisets of radius-3 neighbourhoods —
everything 3 refinement rounds can see — coincide, while the sequences (and
hence the graphs, and their refinement fixpoints) differ.
"""

from __future__ import annotations

import hashlib

from repro.portgraph.graph import PortLabeledGraph
from repro.portgraph import generators


# --------------------------------------------------------------------------- #
# the colliding pair
# --------------------------------------------------------------------------- #
def debruijn_prefer_one(order: int):
    """The greedy ('prefer one') binary de Bruijn sequence of the given order."""
    length = 1 << order
    seen = set()
    sequence = [0] * order
    seen.add(tuple(sequence))
    while len(sequence) < length:
        tail = sequence[-(order - 1):] if order > 1 else []
        if tuple(tail + [1]) not in seen:
            sequence.append(1)
        else:
            sequence.append(0)
        seen.add(tuple(sequence[-order:]))
    return sequence


def debruijn_fkm(order: int):
    """The lexicographically smallest binary de Bruijn sequence (FKM algorithm)."""
    a = [0] * (order + 1)
    sequence = []

    def extend(t: int, p: int) -> None:
        if t > order:
            if order % p == 0:
                sequence.extend(a[1 : p + 1])
        else:
            a[t] = a[t - p]
            extend(t + 1, p)
            for j in range(a[t - p] + 1, 2):
                a[t] = j
                extend(t + 1, t)

    extend(1, 1)
    return sequence


def leaf_decorated_cycle(bits, name: str) -> PortLabeledGraph:
    """A cycle of ``len(bits)`` nodes with a pendant leaf wherever ``bits[i] == 1``.

    Cycle ports are uniform (0 = successor, 1 = predecessor; the leaf edge,
    when present, uses port 2), so the radius-r neighbourhood of cycle node
    ``i`` is determined exactly by the bit window ``bits[i-r .. i+r]``.
    """
    n = len(bits)
    adjacency = [{0: ((i + 1) % n, 1), 1: ((i - 1) % n, 0)} for i in range(n)]
    for i in range(n):
        if bits[i]:
            leaf = len(adjacency)
            adjacency[i][2] = (leaf, 0)
            adjacency.append({0: (i, 2)})
    return PortLabeledGraph(adjacency, name=name)


def three_round_summary(graph: PortLabeledGraph):
    """The pre-fix fingerprint payload: exactly 3 hash rounds, then fold."""

    def digest(payload: str) -> int:
        return int.from_bytes(
            hashlib.blake2b(payload.encode("ascii"), digest_size=8).digest(), "big"
        )

    rows = [graph.adjacency(v) for v in graph.nodes()]
    colors = [len(row) for row in rows]
    for _ in range(3):
        colors = [
            digest(repr((colors[v], tuple((q, colors[u]) for u, q in row))))
            for v, row in enumerate(rows)
        ]
    return (
        graph.num_nodes,
        graph.num_edges,
        tuple(sorted(graph.degree_histogram().items())),
        tuple(sorted(colors)),
    )


class TestFingerprintCollisionFix:
    def test_debruijn_pair_collides_at_three_rounds_but_not_at_the_fixpoint(self):
        first = debruijn_prefer_one(7)
        second = debruijn_fkm(7)
        # genuinely different necklaces (no rotation maps one to the other)
        assert first != second
        rotations = {tuple(first[i:] + first[:i]) for i in range(len(first))}
        assert tuple(second) not in rotations
        g1 = leaf_decorated_cycle(first, "debruijn-prefer-one")
        g2 = leaf_decorated_cycle(second, "debruijn-fkm")
        # the legacy fixed-round scheme cannot tell them apart ...
        assert three_round_summary(g1) == three_round_summary(g2)
        # ... the fixpoint fingerprint can
        assert g1.fingerprint() != g2.fingerprint()

    def test_fingerprint_still_relabeling_invariant(self):
        graph = leaf_decorated_cycle(debruijn_prefer_one(4), "small-necklace")
        n = graph.num_nodes
        perm = [(v * 7 + 3) % n for v in range(n)]
        assert sorted(perm) == list(range(n))
        assert graph.fingerprint() == graph.relabeled(perm).fingerprint()

    def test_fingerprint_is_memoised_and_stable(self):
        graph = generators.asymmetric_cycle(9)
        digest = graph.fingerprint()
        assert digest == graph.fingerprint()
        rebuilt = PortLabeledGraph([graph.adjacency(v) for v in graph.nodes()])
        assert rebuilt.fingerprint() == digest


class TestCacheKey:
    def test_cache_key_is_relabeling_invariant_and_deterministic(self):
        graph = generators.random_connected_graph(10, extra_edges=4, seed=3)
        n = graph.num_nodes
        perm = [(v * 3 + 1) % n for v in range(n)]
        assert sorted(perm) == list(range(n))
        assert graph.cache_key() == graph.relabeled(perm).cache_key()
        rebuilt = PortLabeledGraph([graph.adjacency(v) for v in graph.nodes()])
        assert rebuilt.cache_key() == graph.cache_key()

    def test_cache_key_may_alias_where_fingerprint_does_not(self):
        # the documented trade-off: the shallow bucket key aliases the
        # de Bruijn pair, the precise fingerprint separates it, and the
        # runner cache stays correct because buckets compare exact graphs
        g1 = leaf_decorated_cycle(debruijn_prefer_one(7), "a")
        g2 = leaf_decorated_cycle(debruijn_fkm(7), "b")
        assert g1.cache_key() == g2.cache_key()
        assert g1.fingerprint() != g2.fingerprint()
        assert g1 != g2

    def test_distinct_small_graphs_get_distinct_cache_keys(self):
        keys = {
            generators.path_graph(6).cache_key(),
            generators.star_graph(5).cache_key(),
            generators.cycle_graph(6).cache_key(),
            generators.asymmetric_cycle(6).cache_key(),
            generators.complete_graph(4).cache_key(),
        }
        assert len(keys) == 5
