"""Tests for the Fact 1.1 derivations between tasks."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    cppe_to_ppe,
    pe_to_selection,
    ppe_to_pe,
    weaken_outcome,
    weaken_outputs,
)
from repro.core import ElectionOutcome, Task, all_election_indices, path_election_assignment, validate
from repro.core.tasks import LEADER, NON_LEADER
from repro.portgraph import generators


class TestDerivations:
    def test_cppe_to_ppe_keeps_outgoing_ports(self):
        outputs = {0: LEADER, 1: (0, 1, 2, 0), 2: (1, 0)}
        assert cppe_to_ppe(outputs) == {0: LEADER, 1: (0, 2), 2: (1,)}

    def test_ppe_to_pe_keeps_first_port(self):
        outputs = {0: LEADER, 1: (0, 2), 2: (1,)}
        assert ppe_to_pe(outputs) == {0: LEADER, 1: 0, 2: 1}

    def test_pe_to_selection(self):
        outputs = {0: LEADER, 1: 0, 2: 1}
        assert pe_to_selection(outputs) == {0: LEADER, 1: NON_LEADER, 2: NON_LEADER}

    def test_empty_tuple_leader_is_preserved(self):
        outputs = {0: (), 1: (0, 1)}
        assert cppe_to_ppe(outputs) == {0: LEADER, 1: (0,)}

    def test_weaken_outputs_chains(self):
        outputs = {0: LEADER, 1: (0, 1, 1, 0), 2: (1, 0)}
        derived = weaken_outputs(
            Task.COMPLETE_PORT_PATH_ELECTION, outputs, Task.SELECTION
        )
        assert derived == {0: LEADER, 1: NON_LEADER, 2: NON_LEADER}

    def test_weaken_outputs_same_task_is_identity(self):
        outputs = {0: LEADER, 1: 0}
        assert weaken_outputs(Task.PORT_ELECTION, outputs, Task.PORT_ELECTION) == outputs

    def test_cannot_strengthen(self):
        with pytest.raises(ValueError):
            weaken_outputs(Task.SELECTION, {0: LEADER}, Task.PORT_ELECTION)


class TestDerivedSolutionsRemainValid:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_cppe_solution_weakens_to_valid_solutions_of_all_tasks(self, seed):
        graph = generators.random_connected_graph(9, extra_edges=4, seed=seed)
        indices = all_election_indices(graph)
        if indices[Task.COMPLETE_PORT_PATH_ELECTION] is None:
            pytest.skip("infeasible instance")
        depth = indices[Task.COMPLETE_PORT_PATH_ELECTION]
        leader, sequences = path_election_assignment(graph, depth, complete=True)
        outputs = dict(sequences)
        outputs[leader] = LEADER
        assert validate(Task.COMPLETE_PORT_PATH_ELECTION, graph, outputs).ok
        for target in (Task.PORT_PATH_ELECTION, Task.PORT_ELECTION, Task.SELECTION):
            derived = weaken_outputs(Task.COMPLETE_PORT_PATH_ELECTION, outputs, target)
            assert validate(target, graph, derived).ok, target

    def test_weaken_outcome_preserves_metadata(self):
        outcome = ElectionOutcome(
            Task.PORT_ELECTION,
            {0: LEADER, 1: 0, 2: 0},
            rounds=2,
            advice_bits=7,
            metadata={"scheme": "test"},
        )
        weaker = weaken_outcome(outcome, Task.SELECTION)
        assert weaker.task is Task.SELECTION
        assert weaker.rounds == 2
        assert weaker.advice_bits == 7
        assert weaker.metadata == {"scheme": "test"}
