"""Tests for Building Blocks 1-3 (Section 2.2.1): T, T_X, T_{X,1}, T_{X,2}."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.families import (
    build_tree_with_path,
    figure_1_example,
    index_of_sequence,
    iter_leaf_sequences,
    leaf_count,
    num_augmented_trees,
    sequence_from_index,
)
from repro.portgraph import GraphBuilder, are_isomorphic
from repro.families.trees import add_augmented_tree, add_base_tree
from repro.views import views_equal_across_graphs


class TestLeafCountsAndSequences:
    @pytest.mark.parametrize(
        "delta,k,expected",
        [(3, 1, 1), (4, 1, 2), (4, 2, 6), (5, 1, 3), (5, 2, 12), (6, 3, 100)],
    )
    def test_leaf_count_formula(self, delta, k, expected):
        assert leaf_count(delta, k) == expected

    def test_leaf_count_validation(self):
        with pytest.raises(ValueError):
            leaf_count(2, 1)
        with pytest.raises(ValueError):
            leaf_count(4, 0)

    @pytest.mark.parametrize("delta,k", [(3, 1), (4, 1), (4, 2), (5, 1)])
    def test_number_of_augmented_trees(self, delta, k):
        assert num_augmented_trees(delta, k) == (delta - 1) ** leaf_count(delta, k)

    def test_sequence_enumeration_is_lexicographic_and_complete(self):
        sequences = list(iter_leaf_sequences(4, 1))
        assert len(sequences) == num_augmented_trees(4, 1) == 9
        assert sequences == sorted(sequences)
        assert sequences[0] == (1, 1)
        assert sequences[-1] == (3, 3)

    def test_sequence_index_roundtrip(self):
        for j in range(1, num_augmented_trees(4, 1) + 1):
            sequence = sequence_from_index(4, 1, j)
            assert index_of_sequence(4, 1, sequence) == j

    @given(j=st.integers(min_value=1, max_value=3**6))
    @settings(max_examples=30, deadline=None)
    def test_property_sequence_index_roundtrip(self, j):
        sequence = sequence_from_index(4, 2, j)
        assert index_of_sequence(4, 2, sequence) == j

    def test_sequence_index_validation(self):
        with pytest.raises(ValueError):
            sequence_from_index(4, 1, 0)
        with pytest.raises(ValueError):
            sequence_from_index(4, 1, 10)
        with pytest.raises(ValueError):
            index_of_sequence(4, 1, (1, 1, 1))
        with pytest.raises(ValueError):
            index_of_sequence(4, 1, (0, 1))


class TestBaseTree:
    @pytest.mark.parametrize("delta,k", [(3, 1), (4, 1), (4, 2), (5, 2), (4, 3)])
    def test_base_tree_shape(self, delta, k):
        # The base tree T is an intermediate building block: its root keeps
        # port 0 free for the Block 3 appended path, so it is inspected on the
        # builder (relaxed port validation) rather than frozen into a graph.
        builder = GraphBuilder()
        handles = add_base_tree(builder, delta, k)
        builder.validate(require_contiguous_ports=False)
        assert len(handles.leaves) == leaf_count(delta, k)
        assert builder.degree(handles.root) == delta - 2
        for leaf in handles.leaves:
            assert builder.degree(leaf) == 1
        leaves = set(handles.leaves)
        internal = [
            v for v in range(builder.num_nodes) if v != handles.root and v not in leaves
        ]
        assert all(builder.degree(v) == delta for v in internal)

    def test_base_tree_node_count(self):
        builder = GraphBuilder()
        add_base_tree(builder, 4, 2)
        # root + 2 children + 6 grandchildren
        assert builder.num_nodes == 1 + 2 + 6

    def test_root_ports_are_1_to_delta_minus_2(self):
        builder = GraphBuilder()
        handles = add_base_tree(builder, 5, 1)
        assert builder.ports(handles.root) == [1, 2, 3]


class TestAugmentedTree:
    def test_attachment_counts_follow_sequence(self):
        builder = GraphBuilder()
        handles = add_augmented_tree(builder, 4, 1, (1, 3))
        builder.validate(require_contiguous_ports=False)
        assert builder.degree(handles.leaves[0]) == 1 + 1
        assert builder.degree(handles.leaves[1]) == 1 + 3
        assert [len(a) for a in handles.attached] == [1, 3]

    def test_sequence_length_validation(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError):
            add_augmented_tree(builder, 4, 1, (1,))

    def test_sequence_value_validation(self):
        builder = GraphBuilder()
        with pytest.raises(ValueError):
            add_augmented_tree(builder, 4, 1, (1, 4))


class TestTreesWithPath:
    def test_figure_1_example_sizes(self):
        # Δ=4, k=2, X=(1,2,3,3,2,2): T has 9 nodes, the attachments add 13,
        # the appended path adds k+1 = 3 nodes.
        graph1, handles1 = figure_1_example(1)
        graph2, handles2 = figure_1_example(2)
        assert graph1.num_nodes == 9 + sum((1, 2, 3, 3, 2, 2)) + 3 == 25
        assert graph2.num_nodes == 25
        assert len(handles1.path_nodes) == 3
        # the two variants differ exactly at p_k
        assert not are_isomorphic(graph1, graph2)

    def test_variant_difference_is_at_p_k(self):
        graph1, handles1 = build_tree_with_path(4, 2, (1, 2, 3, 3, 2, 2), 1)
        graph2, handles2 = build_tree_with_path(4, 2, (1, 2, 3, 3, 2, 2), 2)
        k = 2
        p_k_1 = handles1.path_nodes[k - 1]
        p_k_2 = handles2.path_nodes[k - 1]
        # ports towards the previous node on the path are swapped
        prev_1 = handles1.path_nodes[k - 2]
        prev_2 = handles2.path_nodes[k - 2]
        assert graph1.port_to(p_k_1, prev_1) == 1
        assert graph2.port_to(p_k_2, prev_2) == 0

    def test_root_degree_is_delta_minus_1(self):
        graph, handles = build_tree_with_path(5, 1, (2, 1, 3), 1)
        assert graph.degree(handles.root) == 4
        assert sorted(graph.ports(handles.root)) == [0, 1, 2, 3]

    def test_appended_path_port_labels_variant_1(self):
        graph, handles = build_tree_with_path(4, 2, (1, 1, 1, 1, 1, 1), 1)
        root = handles.root
        p = handles.path_nodes
        assert graph.port_to(root, p[0]) == 0
        assert graph.port_to(p[0], root) == 1
        assert graph.port_to(p[0], p[1]) == 0
        assert graph.port_to(p[1], p[0]) == 1
        assert graph.port_to(p[1], p[2]) == 0
        assert graph.port_to(p[2], p[1]) == 0  # p_{k+1} uses port 0
        assert graph.degree(p[2]) == 1

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            build_tree_with_path(4, 1, (1, 1), 3)

    def test_proposition_2_4_roots_look_alike_up_to_depth_k_minus_1(self):
        # Proposition 2.4: B^{k-1} of the root is the same across all T_{j,b}.
        delta, k = 4, 2
        graphs = [
            build_tree_with_path(delta, k, sequence, variant)
            for sequence in ((1, 1, 1, 1, 1, 1), (3, 2, 1, 2, 3, 1), (3, 3, 3, 3, 3, 3))
            for variant in (1, 2)
        ]
        base_graph, base_handles = graphs[0]
        for graph, handles in graphs[1:]:
            assert views_equal_across_graphs(
                base_graph, base_handles.root, graph, handles.root, k - 1
            )

    def test_roots_differ_at_depth_k_for_different_sequences(self):
        delta, k = 4, 2
        graph_a, handles_a = build_tree_with_path(delta, k, (1, 1, 1, 1, 1, 1), 1)
        graph_b, handles_b = build_tree_with_path(delta, k, (2, 1, 1, 1, 1, 1), 1)
        assert not views_equal_across_graphs(
            graph_a, handles_a.root, graph_b, handles_b.root, k
        )
