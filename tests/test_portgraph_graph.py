"""Unit tests for the PortLabeledGraph data structure."""

from __future__ import annotations

import pytest

from repro.portgraph import PortLabeledGraph, PortLabelingError, generators


class TestConstruction:
    def test_from_edge_list_roundtrip(self):
        graph = PortLabeledGraph.from_edge_list(3, [(0, 0, 1, 0), (1, 1, 2, 0)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.degree(1) == 2
        assert graph.endpoint(0, 0) == (1, 0)
        assert graph.endpoint(1, 1) == (2, 0)

    def test_from_mapping_adjacency(self):
        adjacency = [
            {0: (1, 0)},
            {0: (0, 0), 1: (2, 0)},
            {0: (1, 1)},
        ]
        graph = PortLabeledGraph(adjacency)
        assert graph.neighbors(1) == (0, 2)

    def test_rejects_noncontiguous_ports(self):
        with pytest.raises(PortLabelingError):
            PortLabeledGraph.from_edge_list(2, [(0, 1, 1, 0)])

    def test_rejects_self_loop(self):
        with pytest.raises(PortLabelingError):
            PortLabeledGraph([{0: (0, 0)}])

    def test_rejects_disconnected(self):
        with pytest.raises(PortLabelingError):
            PortLabeledGraph.from_edge_list(4, [(0, 0, 1, 0), (2, 0, 3, 0)])

    def test_rejects_bad_reciprocity(self):
        adjacency = [
            {0: (1, 0)},
            {0: (0, 0), 1: (2, 1)},
            {0: (1, 1)},
        ]
        with pytest.raises(PortLabelingError):
            PortLabeledGraph(adjacency)

    def test_rejects_multi_edge(self):
        adjacency = [
            {0: (1, 0), 1: (1, 1)},
            {0: (0, 0), 1: (0, 1)},
        ]
        with pytest.raises(PortLabelingError):
            PortLabeledGraph(adjacency)


class TestAccessors:
    def test_degrees_and_ports(self):
        graph = generators.star_graph(4)
        assert graph.degree(0) == 4
        assert graph.max_degree == 4
        assert graph.min_degree == 1
        assert list(graph.ports(0)) == [0, 1, 2, 3]
        assert graph.degree_sequence() == (4, 1, 1, 1, 1)

    def test_port_to_and_edge_ports(self):
        graph = generators.three_node_line()
        assert graph.port_to(1, 0) == 0
        assert graph.port_to(1, 2) == 1
        assert graph.edge_ports(1, 2) == (1, 0)
        with pytest.raises(KeyError):
            graph.port_to(0, 2)

    def test_edges_iteration_is_consistent(self):
        graph = generators.complete_graph(5)
        edges = list(graph.edges())
        assert len(edges) == graph.num_edges == 10
        for v, pv, u, pu in edges:
            assert graph.endpoint(v, pv) == (u, pu)
            assert graph.endpoint(u, pu) == (v, pv)

    def test_degree_histogram(self):
        graph = generators.star_graph(3)
        assert graph.degree_histogram() == {3: 1, 1: 3}
        assert graph.nodes_of_degree(1) == [1, 2, 3]

    def test_has_edge(self):
        graph = generators.path_graph(4)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)


class TestEqualityAndRelabeling:
    def test_exact_equality(self):
        first = generators.path_graph(4)
        second = generators.path_graph(4)
        assert first == second
        assert hash(first) == hash(second)

    def test_inequality_different_ports(self):
        first = generators.three_node_line((0, 0, 1, 0))
        second = generators.three_node_line((0, 1, 0, 0))
        assert first != second

    def test_relabeling_is_bijective(self):
        graph = generators.path_graph(4)
        relabeled = graph.relabeled([3, 2, 1, 0])
        assert relabeled.num_nodes == 4
        assert relabeled.degree(3) == 1
        assert relabeled.has_edge(3, 2)
        with pytest.raises(ValueError):
            graph.relabeled([0, 0, 1, 2])
