"""Tests for the persistent artifact store (binary records, disk layout, cache integration)."""

from __future__ import annotations

import os
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.families import build_gdk_member
from repro.portgraph import generators
from repro.portgraph.io import graph_from_bytes, graph_to_bytes
from repro.runner import (
    GraphSpec,
    RefinementCache,
    SweepSpec,
    evaluate_graph,
    refinement_cache,
)
from repro.store import ArtifactRecord, ArtifactStore


@pytest.fixture(autouse=True)
def _detached_process_cache():
    """Keep the process-wide cache store-free and empty around every test."""
    refinement_cache.attach_store(None)
    refinement_cache.clear()
    yield
    refinement_cache.attach_store(None)
    refinement_cache.clear()


def _sample_graphs():
    return [
        generators.three_node_line(),
        generators.asymmetric_cycle(7),
        generators.star_graph(5),
        generators.hypercube_graph(3),
        generators.random_connected_graph(9, extra_edges=4, seed=2),
        build_gdk_member(4, 1, 2).graph,
    ]


def _computed_record(graph, *, tasks=("S", "PE")):
    """A record carrying real ψ memo entries, produced the way the runner does."""
    from repro.core import Task

    sweep = SweepSpec.make((), tasks=[Task(code) for code in tasks])
    evaluate_graph(graph, sweep)
    entry = refinement_cache.entry(graph)
    return ArtifactRecord.from_computed(graph, memo=entry.memo)


class TestBinaryGraphEncoding:
    def test_round_trip_exact_and_byte_identical(self):
        for graph in _sample_graphs():
            payload = graph_to_bytes(graph)
            decoded, consumed = graph_from_bytes(payload)
            assert consumed == len(payload)
            assert decoded == graph
            assert decoded.name == graph.name
            assert graph_to_bytes(decoded) == payload

    def test_embedded_offset_parsing(self):
        graph = generators.asymmetric_cycle(6)
        payload = b"prefix" + graph_to_bytes(graph) + b"suffix"
        decoded, consumed = graph_from_bytes(payload, offset=6)
        assert decoded == graph
        assert payload[consumed:] == b"suffix"

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=12),
        extra=st.integers(min_value=0, max_value=6),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_round_trip_property(self, n, extra, seed):
        graph = generators.random_connected_graph(n, extra_edges=extra, seed=seed)
        decoded, _ = graph_from_bytes(graph_to_bytes(graph))
        assert decoded == graph


class TestArtifactRecord:
    def test_encode_decode_byte_identical(self):
        for graph in _sample_graphs():
            record = _computed_record(graph)
            payload = record.to_bytes()
            decoded = ArtifactRecord.from_bytes(payload)
            assert decoded.to_bytes() == payload
            assert decoded.graph == graph
            assert decoded.fingerprint == graph.fingerprint()
            assert decoded.cache_key == graph.cache_key()
            assert decoded.psi == record.psi
            assert decoded.advice == record.advice
            refinement_cache.clear()

    def test_decoded_graph_is_warm(self):
        graph = generators.asymmetric_cycle(7)
        record = _computed_record(graph, tasks=("S", "PE", "PPE", "CPPE"))
        decoded = ArtifactRecord.from_bytes(record.to_bytes())
        engine = decoded.graph.refinement_engine()
        # every depth query (and the fingerprint) is served from the stored
        # tables: zero refinement passes on the restored instance
        assert decoded.graph.fingerprint() == graph.fingerprint()
        stable = engine.ensure_stable()
        original = graph.refinement_engine()
        for depth in range(stable + 1):
            assert list(engine.colors_at(depth)) == list(original.colors_at(depth))
        assert engine.passes == 0

    def test_memo_entries_round_trip(self):
        graph = generators.asymmetric_cycle(7)
        record = _computed_record(graph, tasks=("S", "PPE"))
        memo = ArtifactRecord.from_bytes(record.to_bytes()).memo_entries()
        assert memo[("feasible",)] is True
        assert memo[("psi", "S", None, 200_000)] == ("ok", 1)
        assert memo[("psi", "PPE", None, 200_000)] == ("ok", 3)

    def test_merged_with_unions_psi_entries(self):
        graph = generators.asymmetric_cycle(7)
        first = _computed_record(graph, tasks=("S",))
        refinement_cache.clear()
        second = _computed_record(graph, tasks=("PE",))
        merged = first.merged_with(second)
        codes = {entry[0] for entry in merged.psi}
        assert codes == {"S", "PE"}

    def test_merge_rejects_different_graphs(self):
        records = [_computed_record(g) for g in (_sample_graphs()[0], _sample_graphs()[1])]
        with pytest.raises(ValueError):
            records[0].merged_with(records[1])

    def test_advice_is_bit_exact(self):
        from repro.advice.map_advice import encode_map_advice

        graph = generators.star_graph(4)
        record = _computed_record(graph)
        decoded = ArtifactRecord.from_bytes(record.to_bytes())
        assert decoded.advice_bits("map") == encode_map_advice(graph)


class TestArtifactStore:
    def test_put_get_and_skip_identical(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        record = _computed_record(generators.asymmetric_cycle(7))
        assert store.put(record) is True
        assert store.put(record) is False  # unchanged content is never rewritten
        loaded = store.get(record.fingerprint)
        assert loaded is not None and loaded.graph == record.graph
        assert store.get("ff" * 32) is None
        stats = store.stats()
        assert stats["records"] == 1
        assert stats["puts"] == 1 and stats["put_skips"] == 1

    def test_load_for_graph_without_refining(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(_computed_record(generators.asymmetric_cycle(7)))
        fresh = generators.asymmetric_cycle(7)
        record = store.load_for_graph(fresh)
        assert record is not None
        record.adopt_onto(fresh)
        assert fresh.refinement_engine().passes == 0
        assert store.load_for_graph(generators.star_graph(3)) is None

    def test_atomic_objects_and_manifest_rebuild(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        fingerprints = set()
        for graph in _sample_graphs()[:3]:
            record = _computed_record(graph)
            store.put(record)
            fingerprints.add(record.fingerprint)
            refinement_cache.clear()
        assert set(store.fingerprints()) == fingerprints
        os.remove(os.path.join(str(tmp_path), "manifest.json"))
        fresh_handle = ArtifactStore(str(tmp_path))
        assert fresh_handle.stats()["records"] == 0
        assert fresh_handle.rebuild_manifest() == 3
        assert fresh_handle.stats()["records"] == 3
        # read-through works again after the rebuild
        assert fresh_handle.load_for_graph(generators.three_node_line()) is not None

    def test_relabeled_copy_spills_without_poisoning_the_incumbent(self, tmp_path):
        """Fingerprints are relabeling-invariant; labelings must not mix.

        The first writer owns the primary object; a different labeled graph
        behind the same fingerprint spills to its own deterministic key, so
        the incumbent's record stays byte-for-byte intact while *both*
        labelings resolve through ``load_for_graph`` -- and re-putting the
        spilled labeling is a skip, exactly like the primary path.
        """
        store = ArtifactStore(str(tmp_path))
        graph = generators.asymmetric_cycle(7)
        record = _computed_record(graph)
        store.put(record)
        incumbent_bytes = store.get_bytes(record.fingerprint)

        relabeled = graph.relabeled(list(range(graph.num_nodes))[::-1])
        assert relabeled.fingerprint() == graph.fingerprint()
        refinement_cache.clear()
        other = _computed_record(relabeled)
        assert store.put(other) is True
        assert store.stats()["put_spills"] == 1
        assert store.get_bytes(record.fingerprint) == incumbent_bytes
        spilled = store.load_for_graph(relabeled)
        assert spilled is not None and spilled.graph == relabeled
        loaded = store.load_for_graph(generators.asymmetric_cycle(7))
        assert loaded is not None and loaded.graph == graph
        # idempotent: same labeling, same spill key, no rewrite
        assert store.put(other) is False
        assert store.stats()["put_skips"] >= 1
        assert store.stats()["records"] == 2
        # the two records remain unmergeable (different labeled graphs)
        with pytest.raises(ValueError):
            record.merged_with(other)

    def test_colliding_distinct_graphs_both_warm_start(self, tmp_path):
        """A torus and a twisted torus of one size share a fingerprint but
        are different graphs; both must survive the store round trip."""
        store = ArtifactStore(str(tmp_path))
        plain = generators.torus_graph(3, 4)
        twisted = generators.twisted_torus_graph(3, 4, 1)
        assert plain.fingerprint() == twisted.fingerprint()
        assert plain != twisted
        refinement_cache.clear()
        store.put(_computed_record(plain))
        refinement_cache.clear()
        store.put(_computed_record(twisted))
        assert store.stats()["records"] == 2
        for original in (generators.torus_graph(3, 4), generators.twisted_torus_graph(3, 4, 1)):
            found = store.load_for_graph(original)
            assert found is not None and found.graph == original
        # the rebuilt manifest resolves both labelings too
        assert store.rebuild_manifest() == 2
        assert store.load_for_graph(generators.twisted_torus_graph(3, 4, 1)) is not None

    def test_read_through_survives_a_corrupt_object(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        record = _computed_record(generators.asymmetric_cycle(7))
        store.put(record)
        path = os.path.join(str(tmp_path), "objects", record.fingerprint[:2],
                            record.fingerprint + ".rple")
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        # the warm-start path degrades to a miss, so the cache recomputes...
        cache = RefinementCache()
        cache.attach_store(store)
        entry = cache.entry(generators.asymmetric_cycle(7))
        assert entry.refinement.ensure_stable() >= 0
        assert cache.stats()["store_misses"] == 1
        # ...and the write-through replaces the corrupt incumbent
        assert cache.persist(entry.graph) is True
        assert store.get(record.fingerprint) is not None

    @pytest.mark.parametrize(
        "corruption",
        [b'{"format_version": 1, "records": {"trunc', b"\x00\xff garbage \xfe", b"[]"],
        ids=["truncated", "garbage-bytes", "wrong-shape"],
    )
    def test_corrupt_manifest_recovers_by_rebuilding_from_objects(
        self, tmp_path, corruption
    ):
        """A corrupt-but-present manifest is not an empty store.

        The objects directory is the source of truth; a torn or garbage
        manifest triggers an automatic rebuild, after which read-through
        lookups return byte-identical records to the pre-corruption store.
        """
        store = ArtifactStore(str(tmp_path))
        baseline = {}
        for graph in _sample_graphs()[:3]:
            record = _computed_record(graph)
            store.put(record)
            baseline[record.fingerprint] = store.get_bytes(record.fingerprint)
            refinement_cache.clear()
        probe = generators.three_node_line()
        before = ArtifactStore(str(tmp_path)).load_for_graph(probe)
        assert before is not None

        with open(os.path.join(str(tmp_path), "manifest.json"), "wb") as handle:
            handle.write(corruption)
        recovered = ArtifactStore(str(tmp_path))
        after = recovered.load_for_graph(probe)
        assert after is not None
        assert after.to_bytes() == before.to_bytes(), "recovery must be byte-identical"
        stats = recovered.stats()
        assert stats["manifest_rebuilds"] == 1
        assert stats["records"] == 3
        for fingerprint, payload in baseline.items():
            assert recovered.get_bytes(fingerprint) == payload
        # the rebuilt manifest is clean: a fresh handle reads it without
        # another rebuild
        fresh = ArtifactStore(str(tmp_path))
        assert fresh.stats()["records"] == 3
        assert fresh.stats()["manifest_rebuilds"] == 0

    @pytest.mark.parametrize(
        "corruption",
        ["garbage", "truncated", "empty", "misplaced"],
    )
    def test_corrupt_object_is_quarantined_as_a_miss(self, tmp_path, corruption):
        """A torn or misplaced object must never crash the caller.

        ``get`` validates the decode behind the read: the bad object is
        counted as a miss (``corrupt_objects``), moved to a ``*.quarantine``
        sibling off the read path, and reported as ``None`` so the caller
        falls through to recompute.
        """
        store = ArtifactStore(str(tmp_path))
        record = _computed_record(generators.star_graph(3))
        store.put(record)
        path = os.path.join(str(tmp_path), "objects", record.fingerprint[:2],
                            record.fingerprint + ".rple")
        if corruption == "garbage":
            bad = b"\x00\xff garbage \xfe"
        elif corruption == "truncated":
            bad = record.to_bytes()[: len(record.to_bytes()) // 2]
        elif corruption == "empty":
            bad = b""
        else:  # misplaced: a valid record of a *different* graph
            refinement_cache.clear()
            bad = _computed_record(generators.asymmetric_cycle(7)).to_bytes()
        with open(path, "wb") as handle:
            handle.write(bad)

        before = store.stats()
        assert store.get(record.fingerprint) is None
        stats = store.stats()
        assert stats["corrupt_objects"] == 1
        assert stats["misses"] == before["misses"] + 1
        assert stats["hits"] == before["hits"]  # the pre-decode hit was re-booked
        assert not os.path.exists(path)
        assert os.path.exists(path + ".quarantine")
        # the slot is now a plain miss; a write-through heals it
        assert store.get(record.fingerprint) is None
        assert store.stats()["corrupt_objects"] == 1
        assert store.put(record) is True
        healed = store.get(record.fingerprint)
        assert healed is not None and healed.graph == record.graph

    def test_unreadable_object_is_a_miss_not_an_error(self, tmp_path, monkeypatch):
        """Any ``OSError`` on the object read degrades to a miss.

        ``IsADirectoryError`` (compaction or an operator put a directory on
        the path) and ``PermissionError`` (permissions clamped mid-deploy)
        used to escape to the caller as 500s from the service.
        """
        store = ArtifactStore(str(tmp_path))
        record = _computed_record(generators.star_graph(3))
        store.put(record)
        path = store._object_path(record.fingerprint)

        os.unlink(path)
        os.makedirs(path)  # a directory squatting on the object path
        assert store.get_bytes(record.fingerprint) is None
        assert store.get(record.fingerprint) is None
        os.rmdir(path)

        import builtins

        real_open = builtins.open

        def denying_open(file, *args, **kwargs):
            if str(file) == path:
                raise PermissionError(13, "Permission denied", str(file))
            return real_open(file, *args, **kwargs)

        store.put(record)
        monkeypatch.setattr(builtins, "open", denying_open)
        before = store.stats()["misses"]
        assert store.get_bytes(record.fingerprint) is None
        assert store.get(record.fingerprint) is None
        monkeypatch.setattr(builtins, "open", real_open)
        assert store.stats()["misses"] >= before + 2
        assert store.get(record.fingerprint) is not None  # nothing quarantined

    def test_concurrent_readers_and_writers(self, tmp_path):
        """Torn reads must be impossible: writers replace atomically."""
        store = ArtifactStore(str(tmp_path))
        records = [_computed_record(g) for g in _sample_graphs()[:4]]
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for _ in range(10):
                    for record in records:
                        # independent handles, as separate processes would use
                        ArtifactStore(str(tmp_path)).put(record)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def reader():
            try:
                while not stop.is_set():
                    handle = ArtifactStore(str(tmp_path))
                    for record in records:
                        loaded = handle.get(record.fingerprint)
                        if loaded is not None:
                            assert loaded.graph == record.graph
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        writers = [threading.Thread(target=writer) for _ in range(2)]
        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        assert ArtifactStore(str(tmp_path)).stats()["records"] == 4


class TestManifestStatKeying:
    def test_same_mtime_same_size_rewrite_is_detected(self, tmp_path):
        """The stale-index regression: the manifest cache used to be keyed
        on ``mtime_ns`` alone, so a rewrite landing within one mtime tick
        (and here, pinned to the *same* ``mtime_ns`` and padded to the same
        size) served the old index forever.  The stat-triple key includes
        the inode, which ``os.replace`` changes on every rewrite.
        """
        import json

        store = ArtifactStore(str(tmp_path))
        store.put(_computed_record(generators.asymmetric_cycle(7)))
        reader = ArtifactStore(str(tmp_path))
        assert reader.stats()["records"] == 1  # populate the reader's cache

        manifest_path = os.path.join(str(tmp_path), "manifest.json")
        stat = os.stat(manifest_path)
        with open(manifest_path, "rb") as handle:
            original = handle.read()
        manifest = json.loads(original)
        manifest["records"] = {}
        rewritten = (json.dumps(manifest, indent=2, sort_keys=True) + "\n").encode()
        assert len(rewritten) < len(original)
        rewritten += b" " * (len(original) - len(rewritten))  # identical size
        tmp = manifest_path + ".tmp.test"
        with open(tmp, "wb") as handle:
            handle.write(rewritten)
        os.replace(tmp, manifest_path)
        os.utime(manifest_path, ns=(stat.st_atime_ns, stat.st_mtime_ns))
        assert os.stat(manifest_path).st_mtime_ns == stat.st_mtime_ns
        assert os.stat(manifest_path).st_size == stat.st_size

        assert reader.stats()["records"] == 0, "stale manifest cache served"

    def test_generation_advances_on_rebuild_and_compaction(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        store.put(_computed_record(generators.asymmetric_cycle(7)))
        assert store.generation() == 0
        store.rebuild_manifest()
        assert store.generation() == 1
        summary = store.compact()
        assert summary["generation"] == 2
        assert store.generation() == 2


class TestCompaction:
    def test_compact_reclaims_debris_and_preserves_live_records(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        records = []
        for graph in _sample_graphs()[:2]:
            record = _computed_record(graph)
            store.put(record)
            records.append(record)
            refinement_cache.clear()
        baseline = {r.fingerprint: store.get_bytes(r.fingerprint) for r in records}

        objects = os.path.join(str(tmp_path), "objects")
        # a quarantined object (as the corrupt-read path leaves behind)
        quarantined = os.path.join(objects, "aa")
        os.makedirs(quarantined, exist_ok=True)
        with open(os.path.join(quarantined, "aa" * 32 + ".rple.quarantine"), "wb") as handle:
            handle.write(b"old corpse")
        # a corrupt object that predates the quarantine path
        with open(os.path.join(quarantined, "ab" * 32 + ".rple"), "wb") as handle:
            handle.write(b"torn write")
        # a stale temp file from a crashed writer
        stale_tmp = os.path.join(quarantined, "ac" * 32 + ".rple.tmp.999.1")
        with open(stale_tmp, "wb") as handle:
            handle.write(b"half a record")
        os.utime(stale_tmp, (1, 1))
        # a *fresh* temp file must survive (a live writer may own it)
        fresh_tmp = os.path.join(quarantined, "ad" * 32 + ".rple.tmp.999.2")
        with open(fresh_tmp, "wb") as handle:
            handle.write(b"in flight")

        summary = store.compact()
        assert summary["removed_quarantined"] == 1
        assert summary["removed_corrupt"] == 1
        assert summary["removed_tmp"] == 1
        assert summary["removed_spills"] == 0
        assert summary["live_records"] == 2
        assert os.path.exists(fresh_tmp)
        stats = store.stats()
        assert stats["compactions"] == 1 and stats["compacted_objects"] == 3
        # live objects are byte-for-byte untouched and still resolve
        for fingerprint, payload in baseline.items():
            assert store.get_bytes(fingerprint) == payload
        assert ArtifactStore(str(tmp_path)).load_for_graph(_sample_graphs()[0]) is not None

    def test_compact_merges_and_drops_superseded_spills(self, tmp_path):
        """A spill whose labeled graph the primary now holds is redundant --
        but its memo entries must be folded into the primary, not dropped."""
        store = ArtifactStore(str(tmp_path))
        graph = generators.asymmetric_cycle(7)
        primary = _computed_record(graph, tasks=("S",))
        store.put(primary)
        relabeled = graph.relabeled(list(range(graph.num_nodes))[::-1])
        refinement_cache.clear()
        spill_record = _computed_record(relabeled, tasks=("S", "PE"))
        store.put(spill_record)  # different labeling: spills
        assert store.stats()["put_spills"] == 1
        # the primary is torn and a later writer of the *relabeled* graph
        # replaces it -- the spill is now superseded by its own primary
        primary_path = store._object_path(graph.fingerprint())
        with open(primary_path, "wb") as handle:
            handle.write(b"torn")
        refinement_cache.clear()
        small = _computed_record(relabeled, tasks=("S",))
        store.put(small)

        summary = store.compact()
        assert summary["removed_spills"] == 1
        assert summary["live_records"] == 1
        survivor = ArtifactStore(str(tmp_path)).load_for_graph(relabeled)
        assert survivor is not None and survivor.graph == relabeled
        assert {entry[0] for entry in survivor.psi} == {"S", "PE"}

    def test_distinct_spills_survive_compaction(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        plain = generators.torus_graph(3, 4)
        twisted = generators.twisted_torus_graph(3, 4, 1)
        store.put(_computed_record(plain))
        refinement_cache.clear()
        store.put(_computed_record(twisted))
        summary = store.compact()
        assert summary["removed_spills"] == 0
        assert summary["live_records"] == 2
        for original in (generators.torus_graph(3, 4), generators.twisted_torus_graph(3, 4, 1)):
            found = store.load_for_graph(original)
            assert found is not None and found.graph == original


class TestHotTier:
    def test_admit_on_second_touch_serves_from_memory(self, tmp_path):
        store = ArtifactStore(str(tmp_path), hot_tier_bytes=1 << 20)
        record = _computed_record(generators.asymmetric_cycle(7))
        store.put(record)
        key = record.fingerprint

        first = store.get(key)  # touch 1: doorkeeper only
        assert store.stats()["hot_entries"] == 0
        second = store.get(key)  # touch 2: admitted
        assert store.stats()["hot_entries"] == 1
        read_bytes = store.stats()["bytes_read"]
        third = store.get(key)  # resident: no filesystem at all
        stats = store.stats()
        assert stats["hot_hits"] == 1
        assert stats["bytes_read"] == read_bytes
        assert third is second  # the decoded resident is reused as-is
        for loaded in (first, second, third):
            assert loaded.graph == record.graph
            assert loaded.to_bytes() == record.to_bytes()

    def test_put_invalidates_resident(self, tmp_path):
        store = ArtifactStore(str(tmp_path), hot_tier_bytes=1 << 20)
        graph = generators.asymmetric_cycle(7)
        record = _computed_record(graph, tasks=("S",))
        store.put(record)
        store.get(record.fingerprint)
        store.get(record.fingerprint)  # resident now
        refinement_cache.clear()
        merged = record.merged_with(_computed_record(graph, tasks=("PE",)))
        assert store.put(merged) is True
        loaded = store.get(record.fingerprint)
        assert {entry[0] for entry in loaded.psi} == {"S", "PE"}

    def test_byte_budget_evicts_lru(self, tmp_path):
        record_a = _computed_record(generators.asymmetric_cycle(7))
        refinement_cache.clear()
        record_b = _computed_record(generators.star_graph(5))
        budget = len(record_a.to_bytes()) + len(record_b.to_bytes()) - 1
        store = ArtifactStore(str(tmp_path), hot_tier_bytes=budget)
        store.put(record_a)
        store.put(record_b)
        for _ in range(2):
            store.get(record_a.fingerprint)
        assert store.stats()["hot_entries"] == 1
        for _ in range(2):
            store.get(record_b.fingerprint)
        stats = store.stats()
        assert stats["hot_entries"] == 1  # A was evicted to fit B
        assert stats["hot_evictions"] == 1
        assert stats["hot_bytes"] <= budget
        # the evicted key still reads fine from disk
        assert store.get(record_a.fingerprint) is not None

    def test_decoded_records_outlive_close(self, tmp_path):
        store = ArtifactStore(str(tmp_path), hot_tier_bytes=1 << 20)
        record = _computed_record(generators.asymmetric_cycle(7))
        store.put(record)
        store.get(record.fingerprint)
        resident = store.get(record.fingerprint)
        assert store.stats()["hot_entries"] == 1
        store.close()
        assert store.hot_tier is None
        # the mmap is released, but the decoded record copied its arrays out
        fresh = generators.asymmetric_cycle(7)
        assert resident.graph == fresh
        resident.adopt_onto(fresh)
        assert fresh.refinement_engine().passes == 0
        # the store still works, just cold
        assert store.get(record.fingerprint) is not None

    def test_corrupt_object_is_never_admitted(self, tmp_path):
        store = ArtifactStore(str(tmp_path), hot_tier_bytes=1 << 20)
        record = _computed_record(generators.star_graph(3))
        store.put(record)
        path = store._object_path(record.fingerprint)
        with open(path, "wb") as handle:
            handle.write(b"garbage")
        for _ in range(3):
            assert store.get(record.fingerprint) is None
        assert store.stats()["hot_entries"] == 0


class TestAdmissionPolicy:
    def test_always_is_the_default_and_admits_immediately(self):
        cache = RefinementCache(maxsize=2)
        assert cache.admission == "always"
        cache.entry(generators.asymmetric_cycle(6))
        assert len(cache) == 1
        assert cache.stats()["probation"] == 0

    def test_second_touch_promotes_only_repeat_requests(self):
        cache = RefinementCache(maxsize=4, admission="second-touch")
        hot = generators.asymmetric_cycle(7)
        cache.entry(hot)  # touch 1: probation
        assert len(cache) == 0
        assert cache.stats()["probation"] == 1
        promoted = cache.entry(hot)  # touch 2: promoted
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["probation"] == 0
        assert stats["admissions"] == 1
        assert promoted.graph == hot

    def test_one_hit_wonders_cannot_evict_hot_residents(self):
        cache = RefinementCache(maxsize=2, admission="second-touch")
        hot = generators.asymmetric_cycle(7)
        cache.entry(hot)
        cache.entry(hot)  # resident
        resident = cache.entry(hot)
        for n in range(6, 12):  # a scan of one-hit wonders
            cache.entry(generators.random_connected_graph(n, extra_edges=2, seed=n))
        stats = cache.stats()
        assert stats["evictions"] == 0  # the main LRU never churned
        assert stats["admission_rejects"] > 0
        assert cache.entry(hot) is resident

    def test_refinement_passes_stay_monotone_across_probation_drops(self):
        cache = RefinementCache(maxsize=2, admission="second-touch")
        for n in range(6, 18):
            entry = cache.entry(generators.asymmetric_cycle(n))
            entry.refinement.ensure_stable()
        assert cache.stats()["admission_rejects"] > 0
        passes = cache.refinement_passes
        assert passes > 0
        cache.entry(generators.asymmetric_cycle(6))
        assert cache.refinement_passes >= passes

    def test_persist_does_not_count_as_the_promoting_touch(self, tmp_path):
        store = ArtifactStore(str(tmp_path))
        cache = RefinementCache(maxsize=4, admission="second-touch")
        cache.attach_store(store)
        graph = generators.asymmetric_cycle(7)
        entry = cache.entry(graph)  # touch 1
        entry.memo[("feasible",)] = True
        assert cache.persist(graph) is True  # write-through: not a touch
        assert len(cache) == 0, "persist must not promote a one-touch entry"
        assert cache.stats()["probation"] == 1
        cache.entry(graph)  # the genuine second request promotes
        assert len(cache) == 1

    def test_set_admission_round_trips(self):
        cache = RefinementCache(maxsize=2)
        assert cache.set_admission("second-touch") == "always"
        assert cache.set_admission("always") == "second-touch"
        with pytest.raises(ValueError):
            cache.set_admission("clairvoyant")


class TestCacheStoreIntegration:
    def test_cold_process_warm_starts_from_store(self, tmp_path):
        """The acceptance property: populated store => zero refinement passes."""
        from repro.core import Task

        sweep = SweepSpec.make(
            [GraphSpec.make("asymmetric-cycle", n=7), GraphSpec.make("star", leaves=4)],
            tasks=Task.ordered(),
            profile_depths=(1,),
        )
        store = ArtifactStore(str(tmp_path))
        warm_cache = RefinementCache()
        warm_cache.attach_store(store)
        for spec in sweep.graphs:
            graph = spec.build()
            warm_cache.entry(graph)
            evaluate_graph(graph, sweep)  # populates the process-wide memo
            # copy the memoised outcomes onto the cache under test and persist
            warm_cache.entry(graph).memo.update(refinement_cache.entry(graph).memo)
            warm_cache.persist(graph)
        assert store.stats()["records"] == 2

        # a "cold process": a brand-new cache and brand-new graph instances
        cold_cache = RefinementCache()
        cold_cache.attach_store(store)
        for spec in sweep.graphs:
            graph = spec.build()
            entry = cold_cache.entry(graph)
            assert entry.memo[("feasible",)] is True
            assert entry.refinement.passes == 0
            assert graph.refinement_engine().passes == 0
        stats = cold_cache.stats()
        assert stats["refinement_passes"] == 0
        assert stats["store_hits"] == 2 and stats["store_misses"] == 0

    def test_write_through_merges_with_existing_record(self, tmp_path):
        from repro.core import Task

        store = ArtifactStore(str(tmp_path))
        refinement_cache.attach_store(store)
        graph = generators.asymmetric_cycle(7)
        evaluate_graph(graph, SweepSpec.make((), tasks=[Task("S")]))
        first = store.get(graph.fingerprint())
        refinement_cache.clear()
        fresh = generators.asymmetric_cycle(7)
        evaluate_graph(fresh, SweepSpec.make((), tasks=[Task("PE")]))
        merged = store.get(fresh.fingerprint())
        assert {entry[0] for entry in first.psi} == {"S"}
        assert {entry[0] for entry in merged.psi} == {"S", "PE"}

    def test_eviction_accounts_kernel_bytes(self):
        cache = RefinementCache(maxsize=2)
        graphs = [
            generators.asymmetric_cycle(6),
            generators.asymmetric_cycle(7),
            generators.asymmetric_cycle(8),
        ]
        for graph in graphs:
            entry = cache.entry(graph)
            entry.refinement.ensure_stable()
            entry.kernel.block_cut_tree()  # kernel state must be accounted too
            entry.kernel.distances_from(0)
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["evicted_bytes"] > 0
        assert stats["live_bytes"] > 0
        # an entry's estimate covers refinement + kernel, so the evicted
        # bytes are at least the CSR arrays of the evicted graph
        assert stats["evicted_bytes"] >= graphs[0].csr().nbytes()
