"""Unit and property tests for bit-string encoders."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.advice import (
    BitReader,
    BitWriter,
    bits_from_bytes,
    bytes_from_bits,
    decode_symbols,
    elias_gamma_encode,
    encode_symbols,
    encode_unsigned,
)


class TestBitWriterReader:
    def test_write_and_read_unsigned(self):
        writer = BitWriter()
        writer.write_unsigned(5, 4)
        writer.write_unsigned(0, 3)
        writer.write_unsigned(7, 3)
        bits = writer.getvalue()
        assert bits == "0101" + "000" + "111"
        reader = BitReader(bits)
        assert reader.read_unsigned(4) == 5
        assert reader.read_unsigned(3) == 0
        assert reader.read_unsigned(3) == 7
        assert reader.remaining == 0

    def test_unsigned_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_unsigned(8, 3)
        with pytest.raises(ValueError):
            writer.write_unsigned(-1, 3)

    def test_read_past_end_rejected(self):
        reader = BitReader("01")
        reader.read_unsigned(2)
        with pytest.raises(ValueError):
            reader.read_bit()

    def test_invalid_characters_rejected(self):
        with pytest.raises(ValueError):
            BitReader("0a1")

    def test_elias_gamma_known_values(self):
        assert elias_gamma_encode(1) == "1"
        assert elias_gamma_encode(2) == "010"
        assert elias_gamma_encode(3) == "011"
        assert elias_gamma_encode(4) == "00100"
        with pytest.raises(ValueError):
            elias_gamma_encode(0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_elias_gamma_roundtrip(self, value):
        assert BitReader(elias_gamma_encode(value)).read_elias_gamma() == value

    def test_encode_unsigned_helper(self):
        assert encode_unsigned(5, 4) == "0101"


class TestSymbolEncoding:
    def test_known_roundtrip(self):
        symbols = (3, 0, 1, 7, 2)
        assert decode_symbols(encode_symbols(symbols)) == symbols

    def test_empty_sequence(self):
        assert decode_symbols(encode_symbols(())) == ()

    def test_negative_symbol_rejected(self):
        with pytest.raises(ValueError):
            encode_symbols((1, -2))

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=200))
    def test_property_roundtrip(self, symbols):
        assert list(decode_symbols(encode_symbols(symbols))) == symbols

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
    def test_size_is_linear_in_symbol_count(self, symbols):
        bits = encode_symbols(symbols)
        width = max(1, max(symbols).bit_length())
        assert len(bits) <= len(symbols) * width + 4 * width.bit_length() + 4 * len(symbols).bit_length() + 8


class TestByteConversion:
    def test_roundtrip(self):
        payload = b"leader election"
        assert bytes_from_bits(bits_from_bytes(payload)) == payload

    def test_partial_byte_rejected(self):
        with pytest.raises(ValueError):
            bytes_from_bits("0101")
