"""Randomized concurrency stress schedules against live servers.

The model checker (``tests/test_verify.py``) proves the *protocol* has no
bad interleavings within its bounds; this suite hammers the *real*
implementation -- actual sockets, actual worker processes, actual signals
-- with hypothesis-generated schedules of hostile client behaviour:

* normal queries and NDJSON sweeps, interleaved,
* clients that disconnect mid-stream (RST, not FIN),
* clients that read the stream one tiny chunk at a time,
* malformed sweep-id probes,
* ``SIGKILL`` delivered to live shard workers (process backend).

After every schedule the server must *converge*: health endpoint alive, no
sweep left ``running``, every window slot released, and -- at teardown --
no leaked worker processes.  Schedules are derandomized so a CI failure is
reproducible locally by running the same test.

Marked ``stress``: excluded from the tier-1 run (see ``pytest.ini``), run
by the dedicated CI job via ``-m stress``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import struct
import time
import urllib.error
import urllib.request

import pytest
from test_service import _RunningServer
from test_service_batch import _post_stream

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import ElectionService

pytestmark = pytest.mark.stress

#: Randomized schedules per backend (the acceptance floor is 200).
EXAMPLES = 200
#: Seconds a server gets to reach quiescence after one schedule.
CONVERGE_TIMEOUT = 10.0

STRESS_SETTINGS = settings(
    max_examples=EXAMPLES,
    deadline=None,  # wall time varies with worker respawns; no per-example cap
    derandomize=True,  # CI failures replay locally with the same schedules
    suppress_health_check=[HealthCheck.too_slow],
)


# --------------------------------------------------------------------------- #
# servers (module-scoped: worker pools amortized across all schedules)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def thread_server():
    with _RunningServer(ElectionService(backend="thread", workers=4)) as running:
        yield running


@pytest.fixture(scope="module")
def process_server():
    with _RunningServer(
        ElectionService(backend="process", shards=2, recycle_after=16)
    ) as running:
        yield running
    # leak check: closing the service must reap every worker it ever spawned
    deadline = time.time() + CONVERGE_TIMEOUT
    while multiprocessing.active_children() and time.time() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children(), "shard workers leaked past close()"


# --------------------------------------------------------------------------- #
# schedule operations
# --------------------------------------------------------------------------- #
def _op_query(running, n: int) -> None:
    result = running.post(
        "/election", {"spec": {"kind": "asymmetric-cycle", "params": {"n": 5 + n}}}
    )
    assert result["fingerprint"]


def _op_sweep(running, count: int, seed: int, window: int) -> None:
    lines = _post_stream(
        running,
        {"sweep": {"corpus": "mixed", "count": count, "seed": seed}, "window": window},
    )
    assert lines[-1]["status"] == "done"
    assert lines[-1]["ok"] + lines[-1]["errors"] == count


def _raw_batch_socket(running, payload: dict) -> socket.socket:
    """POST a batch on a raw socket and return it with headers consumed."""
    body = json.dumps(payload).encode("utf-8")
    raw = socket.create_connection(("127.0.0.1", running.server.port), timeout=10)
    raw.sendall(
        (
            f"POST /elections HTTP/1.1\r\nHost: stress\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("ascii")
        + body
    )
    # consume the headers unbuffered (a makefile() reader would also swallow
    # however much of the NDJSON body fits its buffer)
    raw.settimeout(CONVERGE_TIMEOUT)
    buffered = b""
    while b"\r\n\r\n" not in buffered:
        byte = raw.recv(1)
        assert byte, f"connection closed during response headers: {buffered!r}"
        buffered += byte
    assert b" 200 " in buffered.split(b"\r\n", 1)[0], buffered
    return raw

def _op_disconnect(running, count: int, seed: int) -> None:
    """Read the header line, then hang up hard (RST) mid-stream."""
    raw = _raw_batch_socket(
        running, {"sweep": {"corpus": "mixed", "count": count, "seed": seed}, "window": 1}
    )
    try:
        raw.recv(256)
    finally:
        # SO_LINGER(1, 0): close() sends RST instead of FIN, the rudest exit
        raw.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0))
        raw.close()


def _op_slow_read(running, count: int, seed: int) -> None:
    """Drain a stream 64 bytes at a time with pauses (backpressure path)."""
    raw = _raw_batch_socket(
        running, {"sweep": {"corpus": "mixed", "count": count, "seed": seed}, "window": 1}
    )
    try:
        raw.settimeout(CONVERGE_TIMEOUT)
        chunks = []
        while True:
            chunk = raw.recv(64)
            if not chunk:
                break
            chunks.append(chunk)
            time.sleep(0.005)
    finally:
        raw.close()
    lines = [json.loads(line) for line in b"".join(chunks).splitlines()]
    assert lines[-1]["status"] == "done"


def _op_bad_sweep_id(running) -> None:
    try:
        running.get("/sweeps/ZZ..%2Fnope")
        raise AssertionError("expected 404")
    except urllib.error.HTTPError as error:
        assert error.code == 404


def _op_kill_worker(running) -> None:
    """SIGKILL one live shard worker; the backend must respawn and retry."""
    backend = running.service._backend
    pids = [pid for pid in backend.shard_pids() if pid]
    if pids:
        os.kill(pids[0], signal.SIGKILL)


# --------------------------------------------------------------------------- #
# schedule strategies
# --------------------------------------------------------------------------- #
_counts = st.integers(min_value=1, max_value=4)
_seeds = st.integers(min_value=0, max_value=9)
_windows = st.integers(min_value=1, max_value=3)

_common_ops = st.one_of(
    st.tuples(st.just("query"), st.integers(min_value=0, max_value=6)),
    st.tuples(st.just("sweep"), _counts, _seeds, _windows),
    st.tuples(st.just("disconnect"), _counts, _seeds),
    st.tuples(st.just("slow_read"), _counts, _seeds),
    st.tuples(st.just("bad_id")),
)

_thread_schedules = st.lists(_common_ops, min_size=1, max_size=4)
_process_schedules = st.lists(
    st.one_of(_common_ops, st.tuples(st.just("kill"))), min_size=1, max_size=3
)


def _run_op(running, op: tuple) -> None:
    kind, args = op[0], op[1:]
    if kind == "query":
        _op_query(running, *args)
    elif kind == "sweep":
        _op_sweep(running, *args)
    elif kind == "disconnect":
        _op_disconnect(running, *args)
    elif kind == "slow_read":
        _op_slow_read(running, *args)
    elif kind == "bad_id":
        _op_bad_sweep_id(running)
    elif kind == "kill":
        _op_kill_worker(running)
    else:  # pragma: no cover - strategy and dispatcher must stay in sync
        raise AssertionError(f"unknown op {kind!r}")


def _assert_converged(running) -> None:
    """The server reached quiescence: alive, no running sweeps, window drained."""
    assert running.get("/healthz")["status"] == "ok"
    deadline = time.time() + CONVERGE_TIMEOUT
    stats = None
    while time.time() < deadline:
        stats = running.get("/stats")
        if stats["batch"]["active"] == 0:
            break
        time.sleep(0.05)
    assert stats is not None and stats["batch"]["active"] == 0, (
        f"sweeps stuck running after {CONVERGE_TIMEOUT}s: {stats['batch']}"
    )
    scrape = urllib.request.urlopen(f"{running.base}/metrics").read().decode("utf-8")
    occupancy = next(
        line for line in scrape.splitlines() if line.startswith("repro_window_in_flight ")
    )
    assert occupancy.endswith(" 0"), f"window slot leaked: {occupancy}"
    # the span recorder's memory stays hard-capped no matter how hostile the
    # schedule was; anything over the cap shows up as `dropped`, not growth
    from repro.obs import default_recorder

    recorder = default_recorder.stats()
    assert recorder["traces"] <= recorder["max_traces"], recorder
    assert recorder["spans"] <= recorder["max_traces"] * recorder["max_spans_per_trace"], recorder
    # the snapshot /stats served respects the same cap; exact equality with the
    # live recorder would race against the spans of the /stats request itself
    span_cap = recorder["max_traces"] * recorder["max_spans_per_trace"]
    assert 0 <= stats["traces"]["spans"] <= span_cap, stats["traces"]
    assert stats["traces"]["dropped"] >= 0


# --------------------------------------------------------------------------- #
# the stress tests
# --------------------------------------------------------------------------- #
@STRESS_SETTINGS
@given(schedule=_thread_schedules)
def test_thread_backend_survives_hostile_schedules(thread_server, schedule):
    for op in schedule:
        _run_op(thread_server, op)
    _assert_converged(thread_server)


@STRESS_SETTINGS
@given(schedule=_process_schedules)
def test_process_backend_survives_hostile_schedules(process_server, schedule):
    for op in schedule:
        _run_op(process_server, op)
    _assert_converged(process_server)


def test_worker_sigkill_mid_sweep_is_absorbed():
    """Deterministic companion: a worker killed *mid-computation* costs at
    most the killed item (crash-retry may still complete it); the sweep
    always terminates and the crash is visible in the shard telemetry."""
    with _RunningServer(
        ElectionService(backend="process", shards=1, compute_delay=0.2)
    ) as running:
        raw = _raw_batch_socket(
            running,
            {
                "items": [
                    {"spec": {"kind": "asymmetric-cycle", "params": {"n": n}}}
                    for n in range(5, 11)
                ],
                "window": 1,
            },
        )
        try:
            raw.settimeout(30)
            header_chunk = raw.recv(4096)
            assert header_chunk
            backend = running.service._backend
            pids = [pid for pid in backend.shard_pids() if pid]
            assert pids, "shard worker should be alive mid-sweep"
            os.kill(pids[0], signal.SIGKILL)
            chunks = [header_chunk]
            while True:
                chunk = raw.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        finally:
            raw.close()
        lines = [json.loads(line) for line in b"".join(chunks).splitlines()]
        assert lines[-1]["status"] == "done"
        assert lines[-1]["ok"] + lines[-1]["errors"] == 6
        telemetry = running.service.backend_telemetry()
        assert telemetry["crashes"] >= 1
        assert telemetry["spawns"] >= 2, "the killed worker must be respawned"
        _assert_converged(running)
