"""Unit tests for task definitions, outcomes and solution validators."""

from __future__ import annotations

import pytest

from repro.core import (
    LEADER,
    NON_LEADER,
    ElectionOutcome,
    Task,
    output_is_leader,
    validate,
    validate_complete_port_path_election,
    validate_outcome,
    validate_port_election,
    validate_port_path_election,
    validate_selection,
)
from repro.portgraph import generators


class TestTaskEnum:
    def test_ordering_matches_fact_1_1(self):
        ordered = Task.ordered()
        assert ordered[0] is Task.SELECTION
        assert ordered[-1] is Task.COMPLETE_PORT_PATH_ELECTION
        assert [t.strength for t in ordered] == [0, 1, 2, 3]

    def test_full_names(self):
        assert Task.SELECTION.full_name == "Selection"
        assert Task.PORT_ELECTION.full_name == "Port Election"
        assert Task.PORT_PATH_ELECTION.full_name == "Port Path Election"
        assert Task.COMPLETE_PORT_PATH_ELECTION.full_name == "Complete Port Path Election"

    def test_string_values(self):
        assert Task("S") is Task.SELECTION
        assert Task("CPPE") is Task.COMPLETE_PORT_PATH_ELECTION

    def test_output_is_leader(self):
        assert output_is_leader(LEADER)
        assert output_is_leader(())
        assert not output_is_leader(NON_LEADER)
        assert not output_is_leader(0)
        assert not output_is_leader((0, 1))


class TestElectionOutcome:
    def test_leader_extraction(self):
        outcome = ElectionOutcome(Task.SELECTION, {0: NON_LEADER, 1: LEADER, 2: NON_LEADER})
        assert outcome.leaders() == [1]
        assert outcome.leader() == 1
        assert outcome.non_leader_outputs() == {0: NON_LEADER, 2: NON_LEADER}
        assert len(outcome) == 3

    def test_leader_raises_when_ambiguous(self):
        outcome = ElectionOutcome(Task.SELECTION, {0: LEADER, 1: LEADER})
        with pytest.raises(ValueError):
            outcome.leader()

    def test_from_pairs(self):
        outcome = ElectionOutcome.from_pairs(Task.PORT_ELECTION, [(0, LEADER), (1, 0)], rounds=2)
        assert outcome.rounds == 2
        assert outcome.output(1) == 0


class TestValidateSelection:
    def test_valid_selection(self, three_line):
        result = validate_selection(three_line, {0: NON_LEADER, 1: LEADER, 2: NON_LEADER})
        assert result.ok and result.leader == 1
        result.raise_if_invalid()

    def test_no_leader_invalid(self, three_line):
        result = validate_selection(three_line, {v: NON_LEADER for v in three_line.nodes()})
        assert not result.ok
        with pytest.raises(AssertionError):
            result.raise_if_invalid()

    def test_two_leaders_invalid(self, three_line):
        result = validate_selection(three_line, {0: LEADER, 1: LEADER, 2: NON_LEADER})
        assert not result.ok

    def test_missing_node_invalid(self, three_line):
        result = validate_selection(three_line, {0: LEADER, 1: NON_LEADER})
        assert not result.ok
        assert "no output" in result.errors[0]

    def test_garbage_non_leader_output_invalid(self, three_line):
        result = validate_selection(three_line, {0: LEADER, 1: "maybe", 2: NON_LEADER})
        assert not result.ok


class TestValidatePortElection:
    def test_valid_port_election(self, three_line):
        result = validate_port_election(three_line, {0: 0, 1: LEADER, 2: 0})
        assert result.ok and result.leader == 1

    def test_port_not_towards_leader_invalid(self):
        graph = generators.path_graph(4)
        # node 2's port towards node 3 cannot start a simple path to node 0
        bad_port = graph.port_to(2, 3)
        good_port = graph.port_to(2, 1)
        outputs = {0: LEADER, 1: graph.port_to(1, 0), 2: bad_port, 3: graph.port_to(3, 2)}
        assert not validate_port_election(graph, outputs).ok
        outputs[2] = good_port
        assert validate_port_election(graph, outputs).ok

    def test_nonexistent_port_invalid(self, three_line):
        result = validate_port_election(three_line, {0: 5, 1: LEADER, 2: 0})
        assert not result.ok

    def test_non_integer_output_invalid(self, three_line):
        result = validate_port_election(three_line, {0: "0", 1: LEADER, 2: 0})
        assert not result.ok

    def test_cycle_port_election_both_directions_ok(self):
        graph = generators.asymmetric_cycle(5)
        # around a cycle every port starts a simple path to any other node
        outputs = {v: 0 for v in graph.nodes()}
        outputs[2] = LEADER
        assert validate_port_election(graph, outputs).ok


class TestValidatePathElections:
    def test_valid_ppe(self):
        graph = generators.path_graph(4)
        outputs = {
            0: LEADER,
            1: (graph.port_to(1, 0),),
            2: (graph.port_to(2, 1), graph.port_to(1, 0)),
            3: (graph.port_to(3, 2), graph.port_to(2, 1), graph.port_to(1, 0)),
        }
        result = validate_port_path_election(graph, outputs)
        assert result.ok and result.leader == 0

    def test_ppe_non_simple_path_invalid(self):
        graph = generators.path_graph(3)
        # 1 -> 0 -> 1 -> ... is not simple
        outputs = {0: LEADER, 1: (1, 0, 1, 0), 2: (1, 1)}
        assert not validate_port_path_election(graph, outputs).ok

    def test_ppe_wrong_endpoint_invalid(self):
        graph = generators.path_graph(4)
        outputs = {0: LEADER, 1: (graph.port_to(1, 2),), 2: (1,), 3: (0,)}
        assert not validate_port_path_election(graph, outputs).ok

    def test_ppe_empty_sequence_for_non_leader_invalid(self):
        graph = generators.path_graph(3)
        outputs = {0: LEADER, 1: (), 2: (1, 1)}
        # an empty tuple marks a node as leader, so this has two leaders
        assert not validate_port_path_election(graph, outputs).ok

    def test_valid_cppe(self, three_line):
        outputs = {0: (0, 0), 1: LEADER, 2: (0, 1)}
        result = validate_complete_port_path_election(three_line, outputs)
        assert result.ok and result.leader == 1

    def test_cppe_wrong_incoming_port_invalid(self, three_line):
        outputs = {0: (0, 1), 1: LEADER, 2: (0, 1)}
        assert not validate_complete_port_path_election(three_line, outputs).ok

    def test_cppe_odd_length_invalid(self, three_line):
        outputs = {0: (0, 0, 1), 1: LEADER, 2: (0, 1)}
        assert not validate_complete_port_path_election(three_line, outputs).ok

    def test_cppe_leader_may_output_empty_sequence(self, three_line):
        outputs = {0: (0, 0), 1: (), 2: (0, 1)}
        result = validate_complete_port_path_election(three_line, outputs)
        assert result.ok and result.leader == 1

    def test_non_sequence_output_invalid(self, three_line):
        outputs = {0: 3, 1: LEADER, 2: (0, 1)}
        assert not validate_complete_port_path_election(three_line, outputs).ok


class TestValidateDispatch:
    def test_validate_routes_by_task(self, three_line):
        assert validate(Task.SELECTION, three_line, {0: NON_LEADER, 1: LEADER, 2: NON_LEADER}).ok
        assert validate(Task.PORT_ELECTION, three_line, {0: 0, 1: LEADER, 2: 0}).ok

    def test_validate_outcome(self, three_line):
        outcome = ElectionOutcome(Task.SELECTION, {0: NON_LEADER, 1: LEADER, 2: NON_LEADER})
        assert validate_outcome(three_line, outcome).ok
