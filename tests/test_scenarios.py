"""Unit tests for the seeded scenario corpus and its generator families."""

from __future__ import annotations

import pytest

from repro.core import is_feasible
from repro.portgraph import generators
from repro.runner import GraphSpec
from repro.runner.spec import graph_kinds, sized_graph_kinds
from repro.scenarios import corpus_names, corpus_specs, scenario_kinds


class TestScenarioGenerators:
    def test_random_regular_is_regular_connected_and_seeded(self):
        graph = generators.random_regular_graph(10, 4, seed=3)
        assert all(graph.degree(v) == 4 for v in graph.nodes())
        assert graph == generators.random_regular_graph(10, 4, seed=3)
        assert graph != generators.random_regular_graph(10, 4, seed=4)

    def test_random_regular_rejects_odd_stub_count(self):
        with pytest.raises(ValueError):
            generators.random_regular_graph(7, 3)

    def test_erdos_renyi_is_connected_and_seeded(self):
        graph = generators.erdos_renyi_graph(12, seed=5)
        assert graph.num_nodes == 12
        assert graph == generators.erdos_renyi_graph(12, seed=5)
        assert graph != generators.erdos_renyi_graph(12, seed=6)

    def test_circulant_is_symmetric_hence_infeasible(self):
        for n, steps in [(8, (1, 2)), (9, (1, 3)), (10, (1, 5)), (6, (1, 3))]:
            graph = generators.circulant_graph(n, steps)
            assert not is_feasible(graph), graph.name

    def test_circulant_rejects_disconnected_and_bad_steps(self):
        with pytest.raises(ValueError):
            generators.circulant_graph(8, (2, 4))  # gcd 2: disconnected
        with pytest.raises(ValueError):
            generators.circulant_graph(8, (5,))  # beyond n // 2

    def test_torus_is_vertex_transitive_hence_infeasible(self):
        assert not is_feasible(generators.torus_graph(3, 5))
        with pytest.raises(ValueError):
            generators.torus_graph(2, 5)

    def test_twisted_torus_differs_from_torus_but_collides_on_fingerprint(self):
        plain = generators.torus_graph(4, 3)
        twisted = generators.twisted_torus_graph(4, 3, 1)
        assert plain.num_nodes == twisted.num_nodes

        def horizontal_cycle(graph):
            right, v, steps = 3, 0, 0
            while True:
                v = graph.neighbor(v, right)
                steps += 1
                if v == 0:
                    return steps

        # the twist rewires the 3-cycles of rightward edges into one helix
        assert horizontal_cycle(plain) == 3
        assert horizontal_cycle(twisted) == 12
        assert plain != twisted
        # ...while both stay view-symmetric: identical refinement
        # fingerprints on different graphs, the collision case the cache
        # buckets and the store resolve by exact labeled equality
        assert plain.fingerprint() == twisted.fingerprint()

    def test_de_bruijn_like_is_feasible(self):
        graph = generators.de_bruijn_like_graph(3, 2)
        assert graph.num_nodes == 8
        assert is_feasible(graph)

    def test_beacon_tail_shape_and_seeding(self):
        graph = generators.beacon_tail_graph(8, 5, degree=3, seed=2)
        assert graph.num_nodes == 13
        # beacon nodes keep their regular degree except the attachment
        assert graph.degree(0) == 4  # degree 3 + the tail edge
        assert all(graph.degree(v) == 3 for v in range(1, 8))
        # the tail is a path: inner nodes degree 2, the tip degree 1
        assert all(graph.degree(v) == 2 for v in range(8, 12))
        assert graph.degree(12) == 1
        assert graph == generators.beacon_tail_graph(8, 5, degree=3, seed=2)
        assert graph != generators.beacon_tail_graph(8, 5, degree=3, seed=3)

    def test_beacon_tail_rejects_degenerate_tails(self):
        with pytest.raises(ValueError):
            generators.beacon_tail_graph(8, 1)


class TestRegistry:
    def test_scenario_kinds_are_registered_graph_kinds(self):
        assert set(scenario_kinds()) <= set(graph_kinds())

    def test_single_size_scenario_kinds_are_sized(self):
        sized = sized_graph_kinds()
        assert sized["random-regular"] == "n"
        assert sized["erdos-renyi"] == "n"
        assert sized["circulant"] == "n"
        assert sized["de-bruijn"] == "dimension"
        assert "torus" not in sized  # two required parameters

    def test_specs_build_and_round_trip(self):
        for kind, params in [
            ("random-regular", {"n": 8, "degree": 3, "seed": 2}),
            ("erdos-renyi", {"n": 7, "seed": 1}),
            ("circulant", {"n": 9, "steps": [1, 2]}),
            ("torus", {"rows": 3, "cols": 4}),
            ("twisted-torus", {"rows": 3, "cols": 3, "twist": 1}),
            ("de-bruijn", {"dimension": 2, "base": 3}),
        ]:
            spec = GraphSpec.make(kind, **params)
            assert GraphSpec.from_dict(spec.to_dict()) == spec
            graph = spec.build()
            assert graph.num_nodes >= 4


class TestCorpusExpansion:
    def test_deterministic_and_prefix_stable(self):
        full = corpus_specs(40, seed=11)
        assert full == corpus_specs(40, seed=11)
        assert full[:17] == corpus_specs(17, seed=11)
        assert full != corpus_specs(40, seed=12)

    def test_mixed_corpus_covers_every_scenario_family(self):
        # beacon-tail is a scale-tier family: it only appears in dynamic-xl
        # (a 6000-node member has no place in the small mixed sweeps), so
        # coverage is asserted over the union of the two corpora.
        kinds = {spec.kind for spec in corpus_specs(22, seed=0)}
        kinds |= {spec.kind for spec in corpus_specs(3, seed=0, corpus="dynamic-xl")}
        assert set(scenario_kinds()) <= kinds

    def test_every_corpus_name_expands_and_builds(self):
        for name in corpus_names():
            specs = corpus_specs(8, seed=3, corpus=name)
            assert len(specs) == 8
            for spec in specs:
                spec.build()

    def test_symmetric_corpus_is_all_infeasible(self):
        for spec in corpus_specs(9, seed=5, corpus="symmetric"):
            assert not is_feasible(spec.build()), spec.label

    def test_unknown_corpus_and_bad_count(self):
        with pytest.raises(ValueError):
            corpus_specs(5, corpus="no-such")
        with pytest.raises(ValueError):
            corpus_specs(0)
