"""The ``repro warm`` pipeline and its interop with the live service.

PR 9's traffic-shaped store tier has three cooperating pieces this file
exercises end to end: the offline warm pipeline (precompute a corpus into
the store, resumably, with the batch service's sweep identity), the
service reading warm-written records live (no restart required -- the
store manifest is re-read on rewrite by stat identity), and the hot tier
serving repeat lookups from mmap'd residents whose decoded records stay
valid across :meth:`ElectionService.close`.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading

import pytest

from repro.core import Task, all_election_indices
from repro.runner import WarmReport, refinement_cache, warm_sweep
from repro.runner.spec import SweepSpec
from repro.runner.warm import batch_items
from repro.scenarios.corpus import corpus_specs
from repro.service import ElectionServer, ElectionService, deterministic_response
from repro.store import ArtifactStore


@pytest.fixture(autouse=True)
def _detached_process_cache(isolated_refinement_cache):
    yield


def _small_sweep(count: int = 4, seed: int = 11) -> SweepSpec:
    return SweepSpec.make(corpus_specs(count, seed=seed), max_states=50_000)


class _RunningServer:
    """A server on an ephemeral port, driven by a background event loop."""

    def __init__(self, service: ElectionService) -> None:
        self.service = service
        self.server = ElectionServer(service, port=0)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()

    def __enter__(self) -> "_RunningServer":
        self._thread.start()
        assert self._started.wait(10), "server failed to start"
        self.base = f"http://127.0.0.1:{self.server.port}"
        return self

    def __exit__(self, *exc_info) -> None:
        async def _shutdown() -> None:
            await self.server.close()
            await asyncio.sleep(0.05)

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10)

    def get(self, path: str):
        import urllib.request

        with urllib.request.urlopen(f"{self.base}{path}") as response:
            return json.loads(response.read())

    def post(self, path: str, payload) -> dict:
        import urllib.request

        request = urllib.request.Request(
            f"{self.base}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())


# --------------------------------------------------------------------------- #
# the pipeline itself
# --------------------------------------------------------------------------- #
class TestWarmSweep:
    def test_warms_every_item_into_the_store(self, tmp_path):
        sweep = _small_sweep()
        seen = []
        report = warm_sweep(
            sweep,
            str(tmp_path / "store"),
            jobs=2,
            progress=lambda done, total, label, status: seen.append((done, total, status)),
        )
        assert isinstance(report, WarmReport)
        assert report.total == len(sweep.graphs)
        assert report.warmed == report.total
        assert report.skipped == 0 and report.errors == 0
        assert report.jobs == 2
        assert report.store_stats["records"] == report.total
        # progress fired once per item, monotonically
        assert [done for done, _, _ in seen] == list(range(1, report.total + 1))
        assert all(status == "ok" for _, _, status in seen)
        # progress persisted in the batch service's format, under the store
        status_path = tmp_path / "store" / "sweeps" / f"{report.sweep_id}.json"
        persisted = json.loads(status_path.read_text())
        assert persisted["state"] == "done"
        assert persisted["items"] == "+" * report.total

    def test_resume_skips_already_completed_items(self, tmp_path):
        sweep = _small_sweep()
        store_path = str(tmp_path / "store")
        first = warm_sweep(sweep, store_path)
        second = warm_sweep(sweep, store_path)
        assert second.sweep_id == first.sweep_id
        assert second.warmed == 0
        assert second.skipped == second.total == first.total
        assert second.errors == 0
        # --no-resume recomputes (store-served, so still cheap) rather than skip
        third = warm_sweep(sweep, store_path, resume=False)
        assert third.warmed == third.total and third.skipped == 0

    def test_partial_progress_resumes_where_it_stopped(self, tmp_path):
        sweep = _small_sweep()
        store_path = str(tmp_path / "store")
        report = warm_sweep(sweep, store_path)
        # simulate an interrupted run: rewrite the status with one item pending
        status_path = os.path.join(store_path, "sweeps", f"{report.sweep_id}.json")
        persisted = json.loads(open(status_path).read())
        persisted["items"] = "+" * (report.total - 1) + "."
        persisted["completed"] = persisted["ok"] = report.total - 1
        persisted["state"] = "running"
        with open(status_path, "w") as handle:
            json.dump(persisted, handle)
        resumed = warm_sweep(sweep, store_path)
        assert resumed.warmed == 1
        assert resumed.skipped == report.total - 1

    def test_compact_after_warm_reports_summary(self, tmp_path):
        report = warm_sweep(_small_sweep(), str(tmp_path / "store"), compact=True)
        assert report.compaction is not None
        assert report.compaction["live_records"] == report.total
        assert report.compaction["generation"] >= 1

    def test_empty_sweep_is_an_error(self, tmp_path):
        with pytest.raises(ValueError):
            warm_sweep(SweepSpec.make(()), str(tmp_path / "store"))


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestWarmCli:
    def test_warm_then_resume_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        argv = ["warm", "--store", store, "--corpus", "mixed", "--count", "4",
                "--seed", "5", "--jobs", "2", "--quiet"]
        assert main(argv) == 0
        sweep_id = capsys.readouterr().out.strip()
        assert sweep_id and all(c in "0123456789abcdef" for c in sweep_id)
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == sweep_id
        assert "4 resumed" in captured.err

    def test_warm_spec_file(self, tmp_path, capsys):
        from repro.cli import main

        sweep = _small_sweep(count=2)
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(sweep.to_dict()))
        assert main(["warm", "--store", str(tmp_path / "store"),
                     "--spec", str(spec_path), "--quiet"]) == 0
        assert ArtifactStore(str(tmp_path / "store")).stats()["records"] == 2


# --------------------------------------------------------------------------- #
# service interop
# --------------------------------------------------------------------------- #
class TestWarmServiceInterop:
    def test_warm_progress_is_readable_as_a_service_sweep(self, tmp_path):
        """The warm run's id *is* a batch-service sweep id on a shared store."""
        sweep = _small_sweep()
        store_path = str(tmp_path / "store")
        shared = {"tasks": ["S", "PE", "PPE", "CPPE"], "max_states": 50_000}
        report = warm_sweep(sweep, store_path, shared=shared)
        store = ArtifactStore(store_path)
        with _RunningServer(ElectionService(store=store, workers=1)) as running:
            status = running.get(f"/sweeps/{report.sweep_id}")
        assert status["total"] == report.total
        assert status["completed"] == report.total
        assert status["state"] == "done"

    def test_live_service_picks_up_warm_writes_without_restart(self, tmp_path):
        """Warm into a store a running service already serves from: the next
        query must be a store hit (zero refinement passes) and byte-identical
        to the cold-computed answer -- no restart, no cache flush."""
        sweep = _small_sweep(count=3, seed=23)
        store_path = str(tmp_path / "store")
        store = ArtifactStore(store_path)
        service = ElectionService(
            store=store, workers=1, hot_tier_bytes=8 * 1024 * 1024
        )
        with _RunningServer(service) as running:
            # warm lands while the service is live (separate store handle)
            warm_sweep(sweep, store_path, shared={"max_states": 50_000})
            # the in-process warm populated the process-wide cache; flush it
            # so the service's next query genuinely reads the store
            refinement_cache.clear()
            spec = sweep.graphs[0]
            payload = {"spec": spec.to_dict(), "max_states": 50_000}
            before = refinement_cache.refinement_passes
            first = running.post("/election", payload)
            assert refinement_cache.refinement_passes == before, (
                "a warm-written record should replay with zero refinement passes"
            )
            # byte-identity against the direct in-process computation
            graph = spec.build()
            direct = all_election_indices(graph)
            assert first["indices"] == {
                task.value: direct[task] for task in Task.ordered()
            }
            # repeat queries after cache flushes exercise the store path:
            # touch 2 admits the record into the hot tier, touch 3 serves
            # from it -- all while the service stays up
            refinement_cache.clear()
            second = running.post("/election", payload)
            refinement_cache.clear()
            third = running.post("/election", payload)
            assert deterministic_response(first) == deterministic_response(second)
            assert deterministic_response(second) == deterministic_response(third)
            stats = running.get("/stats")
            assert stats["store"]["hot_admissions"] >= 1
            assert stats["store"]["hot_hits"] >= 1
            assert stats["service"]["hot_tier_bytes"] == 8 * 1024 * 1024
            # traffic-shaped serving switched the cache to second-touch
            assert refinement_cache.admission == "second-touch"
        # close() restored the process-wide admission policy
        assert refinement_cache.admission == "always"

    def test_hot_and_cold_serving_are_byte_identical(self, tmp_path):
        """The CI gate's contract in miniature: a hot-tier service and a
        cold store-less service answer every corpus query identically."""
        sweep = _small_sweep(count=3, seed=31)
        store_path = str(tmp_path / "store")
        warm_sweep(sweep, store_path, shared={"max_states": 50_000})
        payloads = [
            {"spec": spec.to_dict(), "max_states": 50_000} for spec in sweep.graphs
        ]
        hot_service = ElectionService(
            store=ArtifactStore(store_path), workers=1, hot_tier_bytes=4 * 1024 * 1024
        )
        with _RunningServer(hot_service) as running:
            hot = [deterministic_response(running.post("/election", p)) for p in payloads]
        refinement_cache.clear()  # make the cold service actually compute
        with _RunningServer(ElectionService(workers=1)) as running:
            cold = [deterministic_response(running.post("/election", p)) for p in payloads]
        assert hot == cold

    def test_hot_records_outlive_service_close(self, tmp_path):
        """Decoded hot-tier records stay valid after close() unmaps buffers."""
        sweep = _small_sweep(count=2, seed=41)
        store_path = str(tmp_path / "store")
        warm_sweep(sweep, store_path, shared={"max_states": 50_000})
        store = ArtifactStore(store_path)
        service = ElectionService(store=store, workers=1, hot_tier_bytes=4 * 1024 * 1024)
        key = next(iter(store.manifest()["records"]))
        store.get(key)  # doorkeeper touch
        record = store.get(key)  # admitted: decoded off the mmap'd resident
        assert record is not None
        assert store.hot_tier is not None and store.hot_tier.counters()["hot_entries"] >= 1
        service.close()
        # the mapping is released, yet the record's arrays were copied out
        # of the buffer at decode time: re-encoding walks every array and
        # must still round-trip byte-exactly
        assert record.to_bytes()
        assert record.color_tables is not None
        # and the store still serves cold reads after close
        assert store.get(key) is not None

    def test_sweep_id_matches_batch_item_expansion(self, tmp_path):
        """warm's identity digest equals the batch coordinator's over the
        same item payloads (the interop the shared progress record rests on)."""
        from repro.runner.warm import _sweep_identity
        from repro.service.batch import BatchItem, _sweep_digest

        sweep = _small_sweep(count=2)
        items = batch_items(sweep, shared={"tasks": ["S"], "max_states": 1000})
        expected = _sweep_digest(
            [BatchItem(i, payload=p) for i, p in enumerate(items)]
        )
        assert _sweep_identity(items) == expected
        report = warm_sweep(
            sweep,
            str(tmp_path / "store"),
            shared={"tasks": ["S"], "max_states": 1000},
        )
        assert report.sweep_id == expected
