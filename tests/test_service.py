"""Integration tests for the asyncio election-query service.

The whole suite runs against either compute backend: set
``REPRO_SERVICE_BACKEND=process`` to drive every service through the
sharded worker-process pool instead of the default thread pool (this is
what the CI backend matrix does).  Behaviour, responses and the aggregated
``/stats`` invariants are backend-independent by contract.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import urllib.error
import urllib.request

import pytest

from repro.advice.map_advice import encode_map_advice
from repro.core import Task, all_election_indices
from repro.portgraph import generators
from repro.portgraph.io import graph_to_dict
from repro.runner import refinement_cache
from repro.service import ElectionServer, ElectionService
from repro.store import ArtifactStore

#: Which compute backend the service tests exercise (CI runs both).
SERVICE_BACKEND = os.environ.get("REPRO_SERVICE_BACKEND", "thread")


def make_service(**kwargs) -> ElectionService:
    """An :class:`ElectionService` on the suite's backend (default thread).

    Under the process backend the shard count is capped so tests do not pay
    for worker spawns they never use.
    """
    kwargs.setdefault("backend", SERVICE_BACKEND)
    if kwargs["backend"] == "process":
        kwargs.setdefault("shards", min(kwargs.get("workers", 4), 2))
    return ElectionService(**kwargs)


@pytest.fixture(autouse=True)
def _detached_process_cache(isolated_refinement_cache):
    yield


class _RunningServer:
    """A server on an ephemeral port, driven by a background event loop."""

    def __init__(self, service: ElectionService) -> None:
        self.service = service
        self.server = ElectionServer(service, port=0)
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()

    def __enter__(self) -> "_RunningServer":
        self._thread.start()
        assert self._started.wait(10), "server failed to start"
        self.base = f"http://127.0.0.1:{self.server.port}"
        return self

    def __exit__(self, *exc_info) -> None:
        async def _shutdown() -> None:
            await self.server.close()
            await asyncio.sleep(0.05)  # let in-flight handlers finish closing

        asyncio.run_coroutine_threadsafe(_shutdown(), self._loop).result(10)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10)

    # ------------------------------------------------------------------ #
    def get(self, path: str):
        with urllib.request.urlopen(f"{self.base}{path}") as response:
            return json.loads(response.read())

    def post(self, path: str, payload) -> dict:
        request = urllib.request.Request(
            f"{self.base}{path}",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request) as response:
            return json.loads(response.read())

    def post_expecting_error(self, path: str, payload) -> "tuple[int, dict]":
        try:
            self.post(path, payload)
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())
        raise AssertionError("expected an HTTP error")


def test_submit_matches_in_process_api_byte_exactly():
    graph = generators.asymmetric_cycle(7)
    with _RunningServer(make_service(workers=2)) as running:
        result = running.post("/election", {"graph": graph_to_dict(graph), "advice": True})
    direct = all_election_indices(graph)
    assert result["indices"] == {task.value: direct[task] for task in Task.ordered()}
    assert result["advice"]["map"] == encode_map_advice(graph)
    assert result["feasible"] is True
    assert result["fingerprint"] == graph.fingerprint()
    assert result["coalesced"] is False


def test_generator_spec_submission_and_task_subset():
    with _RunningServer(make_service(workers=1)) as running:
        result = running.post(
            "/election",
            {"spec": {"kind": "star", "params": {"leaves": 4}}, "tasks": ["S", "PE"]},
        )
    assert result["graph"] == "star(leaves=4)"
    assert set(result["indices"]) == {"S", "PE"}
    assert result["indices"]["S"] == 0


def test_identical_inflight_requests_coalesce():
    graph = generators.asymmetric_cycle(7)
    payload = {"graph": graph_to_dict(graph)}
    # the artificial delay keeps the first computation in flight while the
    # duplicates arrive, making the coalescing deterministic
    with _RunningServer(make_service(workers=2, compute_delay=0.3)) as running:
        results = [None] * 4
        errors = []

        def client(index: int) -> None:
            try:
                results[index] = running.post("/election", payload)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = running.get("/stats")
    assert not errors
    indices = [result["indices"] for result in results]
    assert all(index == indices[0] for index in indices)
    assert stats["service"]["computed"] == 1
    assert stats["service"]["coalesced"] == 3
    assert sum(1 for result in results if result["coalesced"]) == 3


def test_store_backed_service_answers_cold_with_zero_refinement(tmp_path):
    graph = generators.asymmetric_cycle(7)
    payload = {"graph": graph_to_dict(graph), "advice": True}
    store = ArtifactStore(str(tmp_path))
    with _RunningServer(make_service(store=store, workers=1)) as running:
        warm = running.post("/election", payload)
    assert store.stats()["records"] == 1

    # simulate a service restart: fresh process-wide cache, same store
    refinement_cache.clear()
    with _RunningServer(make_service(store=ArtifactStore(str(tmp_path)), workers=1)) as running:
        cold = running.post("/election", payload)
        stats = running.get("/stats")
    assert cold["indices"] == warm["indices"]
    assert cold["advice"] == warm["advice"]
    assert cold["fingerprint"] == warm["fingerprint"]
    assert stats["cache"]["refinement_passes"] == 0
    assert stats["cache"]["store_hits"] == 1


def test_stats_surfaces_every_layer(tmp_path):
    service = make_service(store=ArtifactStore(str(tmp_path)), workers=3)
    with _RunningServer(service) as running:
        running.post("/election", {"spec": {"kind": "asymmetric-cycle", "params": {"n": 6}}})
        stats = running.get("/stats")
    assert stats["service"]["queries"] == 1
    assert stats["service"]["workers"] == 3
    assert {"hits", "misses", "refinement_passes", "evicted_bytes"} <= set(stats["cache"])
    assert {"searches", "states", "cells", "limit_hits"} <= set(stats["search"])
    assert stats["store"]["records"] == 1


def test_healthz():
    with _RunningServer(make_service(workers=1)) as running:
        body = running.get("/healthz")
    assert body["status"] == "ok"
    # every JSON response carries the serving request's trace id
    assert body["trace_id"].count("-") == 1


def test_client_errors():
    with _RunningServer(make_service(workers=1)) as running:
        code, body = running.post_expecting_error("/election", {"spec": {"kind": "no-such"}})
        assert code == 400 and "unknown graph kind" in body["error"]
        code, _ = running.post_expecting_error(
            "/election", {"graph": {"num_nodes": 2, "edges": [[0, 0, 1, 5]]}}
        )
        assert code == 400
        code, _ = running.post_expecting_error(
            "/election",
            {"graph": {"num_nodes": 2, "edges": [[0, 0, 1, 0]]}, "spec": {"kind": "star"}},
        )
        assert code == 400
        code, _ = running.post_expecting_error(
            "/election", {"spec": {"kind": "star", "params": {"leaves": 3}}, "tasks": ["X"]}
        )
        assert code == 400
        code, _ = running.post_expecting_error("/election", [1, 2, 3])
        assert code == 400
        # malformed JSON body
        request = urllib.request.Request(
            f"{running.base}/election", data=b"{not json", headers={}
        )
        try:
            urllib.request.urlopen(request)
            raise AssertionError("expected 400")
        except urllib.error.HTTPError as error:
            assert error.code == 400
        # unknown path and wrong method
        try:
            running.get("/nope")
            raise AssertionError("expected 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404
        try:
            running.get("/election")
            raise AssertionError("expected 405")
        except urllib.error.HTTPError as error:
            assert error.code == 405
