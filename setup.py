"""Setuptools entry point.

Kept as an executable ``setup.py`` (rather than a fully declarative
``pyproject.toml``) so that the package installs in editable mode on
machines without the ``wheel`` package (offline environments where
``pip install -e .`` cannot build an editable wheel):
``python setup.py develop --user`` or
``pip install -e . --no-build-isolation`` both work through it.

The long description is the top-level ``README.md``.
"""

import os

from setuptools import find_packages, setup

_HERE = os.path.abspath(os.path.dirname(__file__))


def _read(relative_path):
    with open(os.path.join(_HERE, relative_path), encoding="utf-8") as handle:
        return handle.read()


_VERSION = {}
exec(_read(os.path.join("src", "repro", "_version.py")), _VERSION)

setup(
    name="repro-leader-election",
    version=_VERSION["__version__"],
    description=(
        "Reproduction of 'Four Shades of Deterministic Leader Election in "
        "Anonymous Networks' (Gorain, Miller, Pelc; SPAA 2021)"
    ),
    long_description=_read("README.md"),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.8",
    # The library is dependency-free by design; numpy unlocks the vectorised
    # kernel backend (byte-identical results, just faster cold sweeps).
    extras_require={"fast": ["numpy"]},
    entry_points={
        "console_scripts": [
            "repro-leader-election = repro.cli:main",
        ]
    },
)
