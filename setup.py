"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that the package can be installed in editable mode on machines without the
``wheel`` package (offline environments where ``pip install -e .`` cannot
build an editable wheel): ``python setup.py develop --user`` or
``pip install -e . --no-build-isolation`` both work through it.
"""

from setuptools import setup

setup()
